// Multi-chip flash array: channels × dies, one full device stack per die.
//
// Generalizes the single-chip stack (ROADMAP item 1) to an array geometry in
// the style of multi-channel SSD simulators: `channels * dies` independent
// chips, each carrying its own SimClock + NandChip + TranslationLayer (+ its
// own SW Leveler — one BET per chip, per the distributed wear-leveling
// design of arXiv:1302.5999). The host LBA space is striped across chips
// RAID-0 style: global LBA g lives at stripe slot g % chip_count, local page
// g / chip_count. A slot→chip permutation (`chip_map_`) makes stripes
// relocatable: the GlobalLevelCoordinator swaps two stripes when cross-chip
// wear diverges, and subsequent routing follows the moved data.
//
// Replay is round-based and deterministic. Each round, the coordinating
// thread partitions a record batch into per-chip queues (fixed routing, in
// record order), then dispatches one task per *channel* on a
// runner::SweepRunner — dies on a channel replay sequentially, modelling the
// shared channel bus, while channels proceed in parallel. Because routing
// and the post-round merge are serial and each chip is a self-contained
// thread-confined stack, the array result is a pure function of the record
// stream: bit-identical at any --jobs, with the per-record run_serial()
// canary threaded through (`use_serial`), exactly like sim/sharded_replay.
//
// Reads of never-written stripe pages are answered at routing time from a
// per-stripe written bitmap. That keeps cross-chip migration honest without
// a trim/unmap API in the translation layer: after a stripe swap the
// destination chip may still hold mappings from its previous stripe, but no
// read for the new stripe can reach them — the bitmap travels with the
// stripe, and only records for written pages are enqueued.
#ifndef SWL_ARRAY_CHIP_ARRAY_HPP
#define SWL_ARRAY_CHIP_ARRAY_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/bitvec.hpp"
#include "core/types.hpp"
#include "runner/sweep_runner.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace swl::array {

/// Array construction parameters: the grid shape plus one per-chip SimConfig
/// every die is built from (identical chips, like a real SSD's flash
/// package). Requires channels >= 1, dies >= 1 and failure injection
/// disabled — migration assumes copies cannot fail mid-stripe.
struct ArrayConfig {
  std::uint32_t channels = 1;
  std::uint32_t dies = 1;
  sim::SimConfig chip;

  [[nodiscard]] std::uint32_t chip_count() const noexcept { return channels * dies; }
};

/// Host-level accounting of the array front-end (per-chip work lives in each
/// chip's own SimResult counters).
struct ArrayCounters {
  std::uint64_t records_routed = 0;  ///< records partitioned into chip queues
  std::uint64_t writes_routed = 0;
  std::uint64_t reads_routed = 0;
  /// Reads of never-written stripe pages, answered at routing time (the
  /// array-level equivalent of Status::lba_not_mapped).
  std::uint64_t reads_unmapped = 0;
  /// Records a chip failed to replay (device full / horizon inside a round).
  std::uint64_t records_dropped = 0;
  std::uint64_t migrations = 0;        ///< stripe exchanges performed
  std::uint64_t migration_copies = 0;  ///< pages rewritten by those exchanges
};

class ChipArray {
 public:
  explicit ChipArray(const ArrayConfig& config);

  ChipArray(const ChipArray&) = delete;
  ChipArray& operator=(const ChipArray&) = delete;

  [[nodiscard]] std::uint32_t channels() const noexcept { return channels_; }
  [[nodiscard]] std::uint32_t dies() const noexcept { return dies_; }
  [[nodiscard]] std::uint32_t chip_count() const noexcept { return chip_count_; }

  /// Logical pages the whole array exports (chip_count × per-chip pages).
  [[nodiscard]] Lba lba_count() const noexcept { return per_chip_lbas_ * chip_count_; }
  [[nodiscard]] Lba per_chip_lba_count() const noexcept { return per_chip_lbas_; }

  // -- striped placement -----------------------------------------------------

  [[nodiscard]] std::uint32_t slot_of(Lba global) const noexcept {
    return static_cast<std::uint32_t>(global % chip_count_);
  }
  [[nodiscard]] Lba local_lba(Lba global) const noexcept { return global / chip_count_; }
  /// Chip currently serving `global` (follows migrations).
  [[nodiscard]] std::uint32_t chip_of(Lba global) const { return chip_map_[slot_of(global)]; }
  [[nodiscard]] std::uint32_t chip_at_slot(std::uint32_t slot) const;
  [[nodiscard]] std::uint32_t slot_of_chip(std::uint32_t chip) const;

  // -- round-based replay ----------------------------------------------------

  /// Replays one batch: routes every record to its chip (wrapping LBAs
  /// beyond lba_count(), like the simulator), then replays all per-chip
  /// queues — one parallel task per channel, dies in sequence within it.
  /// `use_serial` drives each chip's Simulator::run_serial instead of the
  /// batched run(): the bit-identical canary. Returns only after every chip
  /// finished its queue (the runner map is the barrier), so callers may
  /// inspect or migrate immediately after.
  void replay_round(std::span<const trace::TraceRecord> records, runner::SweepRunner& runner,
                    double max_years, bool use_serial = false);

  /// Exchanges the logical stripes currently living on `chip_a` and
  /// `chip_b`: every written page of either stripe is copied to the other
  /// chip through its normal host write path (the copies wear the
  /// destination and can trigger its per-chip SW Leveler — migration is not
  /// free, and the cost lands in migration_copies), then the slot→chip
  /// placement is swapped. Must be called between rounds, from the thread
  /// that owns the array.
  void exchange_stripes(std::uint32_t chip_a, std::uint32_t chip_b);

  // -- inspection ------------------------------------------------------------

  [[nodiscard]] sim::Simulator& chip_sim(std::uint32_t chip);
  [[nodiscard]] const sim::Simulator& chip_sim(std::uint32_t chip) const;

  /// Mean erase count across the chip's blocks — the per-chip wear figure
  /// the GlobalLevelCoordinator compares.
  [[nodiscard]] double mean_erase_count(std::uint32_t chip) const;
  [[nodiscard]] std::vector<double> per_chip_mean_erases() const;

  /// Full per-chip outcome (the same SimResult a standalone run produces).
  [[nodiscard]] sim::SimResult chip_result(std::uint32_t chip) const;

  /// Earliest first-failure across chips, in simulated years (nullopt while
  /// no block anywhere wore out).
  [[nodiscard]] std::optional<double> first_failure_years() const;

  /// Longest per-chip simulated time (chips advance independently).
  [[nodiscard]] double elapsed_years() const;

  [[nodiscard]] const ArrayCounters& counters() const noexcept { return counters_; }

 private:
  struct ChipStack {
    std::unique_ptr<sim::Simulator> sim;
    trace::Trace queue;  // this round's routed records (local LBAs)
  };

  [[nodiscard]] std::uint32_t chip_index(std::uint32_t channel, std::uint32_t die) const noexcept {
    return channel * dies_ + die;
  }

  std::uint32_t channels_ = 0;
  std::uint32_t dies_ = 0;
  std::uint32_t chip_count_ = 0;
  Lba per_chip_lbas_ = 0;
  std::vector<ChipStack> chips_;
  std::vector<std::uint32_t> chip_map_;  // slot  -> chip currently serving it
  std::vector<std::uint32_t> slot_map_;  // chip  -> slot it currently serves
  /// Per-*slot* written bitmap (bit = local LBA): moves with the stripe on
  /// migration, so "was this page ever written" stays answerable wherever
  /// the stripe lives.
  std::vector<BitVec> written_;
  ArrayCounters counters_;
};

}  // namespace swl::array

#endif  // SWL_ARRAY_CHIP_ARRAY_HPP
