#include "bdev/block_device.hpp"

#include <bit>

#include "core/contracts.hpp"

namespace swl::bdev {

BlockDevice::BlockDevice(tl::TranslationLayer& layer, std::uint32_t sector_size_bytes)
    : layer_(layer), sector_size_(sector_size_bytes) {
  const std::uint32_t page_size = layer.chip().geometry().page_size_bytes;
  SWL_REQUIRE(sector_size_bytes > 0 && page_size % sector_size_bytes == 0,
              "sector size must divide the page size");
  sectors_per_page_ = page_size / sector_size_bytes;
  page_buffer_.resize(page_size);
  SWL_REQUIRE(sectors_per_page_ >= 1 && sectors_per_page_ <= 8,
              "at most 8 sectors per page are supported by the token payload model");
  lane_bits_ = 64 / sectors_per_page_;
  lane_mask_ = lane_bits_ == 64 ? ~0ULL : (1ULL << lane_bits_) - 1;
}

SectorIndex BlockDevice::sector_count() const noexcept {
  return static_cast<SectorIndex>(layer_.lba_count()) * sectors_per_page_;
}

Lba BlockDevice::page_of(SectorIndex sector) const {
  SWL_REQUIRE(sector < sector_count(), "sector out of range");
  return static_cast<Lba>(sector / sectors_per_page_);
}

std::uint32_t BlockDevice::lane_of(SectorIndex sector) const noexcept {
  return static_cast<std::uint32_t>(sector % sectors_per_page_);
}

Status BlockDevice::load_page(Lba lba, std::uint64_t* token) {
  const Status st = layer_.read(lba, token);
  if (st == Status::lba_not_mapped) {
    *token = 0;  // never-written page: all-zero lanes, like a formatted disk
    return Status::ok;
  }
  if (st == Status::ok) ++counters_.rmw_page_reads;
  return st;
}

Status BlockDevice::write_sector(SectorIndex sector, std::uint64_t value) {
  thread_checker_.check("BlockDevice::write_sector");
  const Lba lba = page_of(sector);
  std::uint64_t token = 0;
  if (sectors_per_page_ > 1) {
    // Read-modify-write: preserve the sibling sectors of the page.
    const Status st = load_page(lba, &token);
    if (st != Status::ok) return st;
  }
  const std::uint32_t shift = lane_of(sector) * lane_bits_;
  token &= ~(lane_mask_ << shift);
  token |= (value & lane_mask_) << shift;
  const Status st = layer_.write(lba, token);
  if (st != Status::ok) return st;
  ++counters_.sector_writes;
  ++counters_.page_writes;
  return Status::ok;
}

Status BlockDevice::read_sector(SectorIndex sector, std::uint64_t* value) {
  thread_checker_.check("BlockDevice::read_sector");
  SWL_REQUIRE(value != nullptr, "null output");
  const Lba lba = page_of(sector);
  std::uint64_t token = 0;
  const Status st = layer_.read(lba, &token);
  if (st != Status::ok) return st;
  *value = (token >> (lane_of(sector) * lane_bits_)) & lane_mask_;
  ++counters_.sector_reads;
  return Status::ok;
}

namespace {

std::uint64_t fnv1a_token(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Status BlockDevice::write_sector_bytes(SectorIndex sector, std::span<const std::uint8_t> data) {
  // The shared page_buffer_ scratch makes this path reentrancy-hostile: a
  // second thread in here mid-RMW would interleave its bytes into ours. The
  // confinement check turns that race into an immediate contract failure.
  thread_checker_.check("BlockDevice::write_sector_bytes");
  SWL_REQUIRE(data.size() == sector_size_, "data must be exactly one sector");
  const Lba lba = page_of(sector);
  std::fill(page_buffer_.begin(), page_buffer_.end(), std::uint8_t{0});
  if (sectors_per_page_ > 1) {
    const Status st = layer_.read_bytes(lba, page_buffer_);
    if (st == Status::ok) {
      ++counters_.rmw_page_reads;
    } else if (st != Status::lba_not_mapped) {
      return st;
    }
  }
  std::copy(data.begin(), data.end(),
            page_buffer_.begin() + static_cast<std::ptrdiff_t>(lane_of(sector) * sector_size_));
  const Status st = layer_.write(lba, fnv1a_token(page_buffer_), page_buffer_);
  if (st != Status::ok) return st;
  ++counters_.sector_writes;
  ++counters_.page_writes;
  return Status::ok;
}

Status BlockDevice::read_sector_bytes(SectorIndex sector, std::span<std::uint8_t> out) {
  thread_checker_.check("BlockDevice::read_sector_bytes");
  SWL_REQUIRE(out.size() == sector_size_, "out must be exactly one sector");
  const Lba lba = page_of(sector);
  const Status st = layer_.read_bytes(lba, page_buffer_);
  if (st != Status::ok) return st;
  const auto offset = static_cast<std::ptrdiff_t>(lane_of(sector) * sector_size_);
  std::copy(page_buffer_.begin() + offset,
            page_buffer_.begin() + offset + static_cast<std::ptrdiff_t>(sector_size_),
            out.begin());
  ++counters_.sector_reads;
  return Status::ok;
}

Status BlockDevice::write_sectors(SectorIndex first, std::uint64_t count,
                                  std::uint64_t first_value) {
  thread_checker_.check("BlockDevice::write_sectors");
  SWL_REQUIRE(count > 0, "empty sector run");
  SWL_REQUIRE(first + count <= sector_count(), "sector run out of range");
  SectorIndex sector = first;
  std::uint64_t value = first_value;
  while (sector < first + count) {
    const bool whole_page =
        lane_of(sector) == 0 && (first + count - sector) >= sectors_per_page_;
    if (!whole_page) {
      const Status st = write_sector(sector, value);
      if (st != Status::ok) return st;
      ++sector;
      ++value;
      continue;
    }
    // Aligned whole-page span: build the token directly, no read needed.
    std::uint64_t token = 0;
    for (std::uint32_t lane = 0; lane < sectors_per_page_; ++lane) {
      token |= ((value + lane) & lane_mask_) << (lane * lane_bits_);
    }
    const Status st = layer_.write(page_of(sector), token);
    if (st != Status::ok) return st;
    counters_.sector_writes += sectors_per_page_;
    ++counters_.page_writes;
    sector += sectors_per_page_;
    value += sectors_per_page_;
  }
  return Status::ok;
}

Status BlockDevice::write_sector_run(SectorIndex first, std::span<const std::uint64_t> values,
                                     std::uint64_t* sectors_done) {
  thread_checker_.check("BlockDevice::write_sector_run");
  const std::uint64_t count = values.size();
  SWL_REQUIRE(count > 0, "empty sector run");
  SWL_REQUIRE(first + count <= sector_count(), "sector run out of range");
  std::uint64_t done = 0;
  const auto report = [&](Status st) {
    if (sectors_done != nullptr) *sectors_done = done;
    return st;
  };
  SectorIndex sector = first;
  while (done < count) {
    const bool whole_page = lane_of(sector) == 0 && (count - done) >= sectors_per_page_;
    if (!whole_page) {
      const Status st = write_sector(sector, values[done]);
      if (st != Status::ok) return report(st);
      ++sector;
      ++done;
      continue;
    }
    // Aligned whole-page span: pack the lane values into the token directly,
    // no read needed — the same fast path write_sectors takes.
    std::uint64_t token = 0;
    for (std::uint32_t lane = 0; lane < sectors_per_page_; ++lane) {
      token |= (values[done + lane] & lane_mask_) << (lane * lane_bits_);
    }
    const Status st = layer_.write(page_of(sector), token);
    if (st != Status::ok) return report(st);
    counters_.sector_writes += sectors_per_page_;
    ++counters_.page_writes;
    sector += sectors_per_page_;
    done += sectors_per_page_;
  }
  return report(Status::ok);
}

}  // namespace swl::bdev
