// Sector-granularity block-device emulation on top of a translation layer.
//
// The paper counts LBAs in 512-byte *sectors* (its 1 GB device exports
// 2,097,152 LBAs) while reads/programs operate on whole flash pages (2 KB on
// large-block devices). This adapter closes that gap the way a firmware
// block layer does: `sectors_per_page` sectors are packed into one logical
// page, and a sub-page sector write becomes a read-modify-write of the
// containing page — the write amplification that entails is surfaced in the
// counters.
//
// Payload model: the library models page contents as a 64-bit token, so the
// adapter packs `sectors_per_page` equal lanes of 64/sectors_per_page bits
// into it. A sector's content is its lane value; tests verify per-sector
// integrity end-to-end through GC, folds and static wear leveling.
#ifndef SWL_BDEV_BLOCK_DEVICE_HPP
#define SWL_BDEV_BLOCK_DEVICE_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "core/sync.hpp"
#include "tl/translation_layer.hpp"

namespace swl::bdev {

/// Sector index as seen by the host file system.
using SectorIndex = std::uint64_t;

struct BdevCounters {
  std::uint64_t sector_writes = 0;
  std::uint64_t sector_reads = 0;
  /// Page reads performed to preserve sibling sectors on sub-page writes.
  std::uint64_t rmw_page_reads = 0;
  /// Page writes issued to the translation layer.
  std::uint64_t page_writes = 0;
};

class BlockDevice {
 public:
  /// Wraps `layer`; sector size must divide the page size, and at most 8
  /// sectors fit one page (lane width >= 8 bits).
  explicit BlockDevice(tl::TranslationLayer& layer, std::uint32_t sector_size_bytes = 512);

  /// Writes one sector (lane-truncated value). Sub-page granularity: reads
  /// the containing page first when it already holds data.
  Status write_sector(SectorIndex sector, std::uint64_t value);

  /// Reads one sector; Status::lba_not_mapped when its page was never
  /// written.
  Status read_sector(SectorIndex sector, std::uint64_t* value);

  /// Writes `count` consecutive sectors with values from `first_value`
  /// onward; whole-page spans skip the read-modify-write.
  Status write_sectors(SectorIndex first, std::uint64_t count, std::uint64_t first_value);

  /// Writes `values.size()` consecutive sectors starting at `first` with
  /// explicit per-sector values — the generalization of write_sectors the
  /// host front-end's write coalescer feeds. Page handling is identical to
  /// write_sectors: aligned whole-page spans build the page token directly
  /// (no read-modify-write), head/tail partial pages go sector by sector, so
  /// a run submitted here is bit-identical to the equivalent sequence of
  /// write_sector/write_sectors calls. On failure `*sectors_done` (optional)
  /// receives the number of leading sectors that were durably written; the
  /// sector at that index is the one whose page write failed.
  Status write_sector_run(SectorIndex first, std::span<const std::uint64_t> values,
                          std::uint64_t* sectors_done = nullptr);

  // -- byte-accurate API (requires a chip with store_payload_bytes) ---------

  /// Writes one sector of real bytes (`data` must be sector_size bytes);
  /// a sub-page write reads the containing page first to preserve siblings.
  Status write_sector_bytes(SectorIndex sector, std::span<const std::uint8_t> data);

  /// Reads one sector of bytes into `out` (sector_size bytes); sectors of
  /// never-written pages read back as zeros once their page exists, and
  /// Status::lba_not_mapped when the page was never written at all.
  Status read_sector_bytes(SectorIndex sector, std::span<std::uint8_t> out);

  [[nodiscard]] std::uint32_t sector_size_bytes() const noexcept { return sector_size_; }

  [[nodiscard]] SectorIndex sector_count() const noexcept;
  [[nodiscard]] std::uint32_t sectors_per_page() const noexcept { return sectors_per_page_; }
  [[nodiscard]] std::uint64_t lane_mask() const noexcept { return lane_mask_; }
  [[nodiscard]] const BdevCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] tl::TranslationLayer& layer() noexcept { return layer_; }

  /// Rebinds the device's thread-confinement check at a deliberate ownership
  /// handoff (e.g. the host scheduler handing a shard's stack to its consumer
  /// thread). Pair with NandChip::detach_owner_thread — the whole stack moves
  /// together.
  void detach_owner_thread() noexcept { thread_checker_.detach(); }

 private:
  [[nodiscard]] Lba page_of(SectorIndex sector) const;
  [[nodiscard]] std::uint32_t lane_of(SectorIndex sector) const noexcept;

  /// Reads the page token, or all-zero lanes for an unmapped page.
  Status load_page(Lba lba, std::uint64_t* token);

  tl::TranslationLayer& layer_;
  std::uint32_t sector_size_;
  std::uint32_t sectors_per_page_;
  std::uint32_t lane_bits_;
  std::uint64_t lane_mask_;
  BdevCounters counters_;
  std::vector<std::uint8_t> page_buffer_;  // scratch for byte read-modify-write
  // The device is thread-confined, not thread-safe: counters_ and the shared
  // page_buffer_ scratch (the byte read-modify-write path) are mutated
  // without synchronization. Checked (debug builds) at every public
  // entry point; concurrent callers go through the host scheduler, which
  // gives each consumer thread exclusive ownership of one device stack.
  ThreadChecker thread_checker_;
};

}  // namespace swl::bdev

#endif  // SWL_BDEV_BLOCK_DEVICE_HPP
