// Flash-chip geometry and the paper's standard device presets.
//
// The paper (Section 1) fixes three NAND organizations:
//   - small-block SLC:  512 B pages,  32 pages/block, 100k erase endurance
//   - large-block SLC:  2 KB  pages,  64 pages/block, 100k erase endurance
//   - MLC×2:            2 KB  pages, 128 pages/block,  10k erase endurance
// The evaluation (Section 5) uses 1 GB MLC×2: 4096 blocks × 128 pages × 2 KB,
// i.e. 2,097,152 LBAs wide with one LBA per 512 B sector mapped to pages by
// the translation layer; here one LBA covers one page, matching the paper's
// 2,097,152-LBA count divided by the 4 sectors/page the FTL groups (we expose
// the page-granularity address space directly).
#ifndef SWL_CORE_GEOMETRY_HPP
#define SWL_CORE_GEOMETRY_HPP

#include <cstdint>
#include <string>

#include "core/types.hpp"

namespace swl {

/// NAND cell technology; determines endurance and default timing.
enum class CellType { slc_small_block, slc_large_block, mlc_x2 };

[[nodiscard]] std::string_view to_string(CellType t) noexcept;

/// Static description of a flash chip's layout.
struct FlashGeometry {
  BlockIndex block_count = 0;
  PageIndex pages_per_block = 0;
  std::uint32_t page_size_bytes = 0;

  [[nodiscard]] constexpr std::uint64_t page_count() const noexcept {
    return static_cast<std::uint64_t>(block_count) * pages_per_block;
  }
  [[nodiscard]] constexpr std::uint64_t capacity_bytes() const noexcept {
    return page_count() * page_size_bytes;
  }
  /// Number of logical page addresses the device exports (1 LBA == 1 page).
  [[nodiscard]] constexpr std::uint64_t lba_count() const noexcept { return page_count(); }

  /// True when every field is non-zero and products do not overflow.
  [[nodiscard]] bool valid() const noexcept;

  friend constexpr bool operator==(const FlashGeometry&, const FlashGeometry&) = default;
};

/// Operation latencies and endurance for a cell technology.
struct NandTiming {
  std::uint64_t read_page_us = 0;
  std::uint64_t program_page_us = 0;
  std::uint64_t erase_block_us = 0;
  /// Erase cycles a block sustains before wearing out.
  std::uint32_t endurance = 0;
};

/// Default timing/endurance for a cell technology (MLC×2 erase ≈ 1.5 ms per
/// the STMicroelectronics part the paper cites [8]).
[[nodiscard]] NandTiming default_timing(CellType t) noexcept;

/// Geometry of a device of `capacity_bytes` built from `t` cells.
/// Requires capacity to be a multiple of the block size of `t`.
[[nodiscard]] FlashGeometry make_geometry(CellType t, std::uint64_t capacity_bytes);

/// The paper's evaluation device: 1 GB MLC×2 (4096 blocks × 128 × 2 KB).
[[nodiscard]] FlashGeometry paper_geometry();

/// A geometry with the same block shape as `g` but `block_count` blocks;
/// used to run shape-preserving scaled-down experiments.
[[nodiscard]] FlashGeometry scaled_geometry(const FlashGeometry& g, BlockIndex block_count);

/// One-line description, e.g. "4096 blk x 128 pg x 2048 B (1024 MiB)".
[[nodiscard]] std::string describe(const FlashGeometry& g);

}  // namespace swl

#endif  // SWL_CORE_GEOMETRY_HPP
