// Fundamental identifier types shared by every layer of the stack.
#ifndef SWL_CORE_TYPES_HPP
#define SWL_CORE_TYPES_HPP

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace swl {

/// Logical block address: the sector index the host file system uses.
/// One LBA addresses one flash page worth of data (the paper's convention).
using Lba = std::uint32_t;

/// Physical block index within a chip.
using BlockIndex = std::uint32_t;

/// Page index within a block.
using PageIndex = std::uint32_t;

/// Virtual block address used by NFTL (LBA divided by pages-per-block).
using Vba = std::uint32_t;

/// Sentinel for "no LBA / unmapped".
inline constexpr Lba kInvalidLba = std::numeric_limits<Lba>::max();

/// Sentinel for "no physical block".
inline constexpr BlockIndex kInvalidBlock = std::numeric_limits<BlockIndex>::max();

/// Sentinel for "no page".
inline constexpr PageIndex kInvalidPage = std::numeric_limits<PageIndex>::max();

/// Physical page address: (residing block number, page number in the block),
/// exactly the two-part PBA of the paper's Figure 2(a).
struct Ppa {
  BlockIndex block = kInvalidBlock;
  PageIndex page = kInvalidPage;

  [[nodiscard]] constexpr bool valid() const noexcept {
    return block != kInvalidBlock && page != kInvalidPage;
  }

  friend constexpr auto operator<=>(const Ppa&, const Ppa&) = default;
};

/// Invalid / unmapped physical page address.
inline constexpr Ppa kInvalidPpa{};

}  // namespace swl

template <>
struct std::hash<swl::Ppa> {
  std::size_t operator()(const swl::Ppa& p) const noexcept {
    return (static_cast<std::size_t>(p.block) << 32) ^ p.page;
  }
};

#endif  // SWL_CORE_TYPES_HPP
