// Simulated time base for the whole stack.
//
// All flash-operation latencies and trace inter-arrival gaps advance one
// shared SimClock; endurance results ("first failure time in years") are read
// off this clock, so decade-long experiments complete in seconds of wall time.
#ifndef SWL_CORE_CLOCK_HPP
#define SWL_CORE_CLOCK_HPP

#include <cstdint>

namespace swl {

/// Simulated microseconds since simulation start.
using SimTime = std::uint64_t;

inline constexpr SimTime kUsPerSecond = 1'000'000ULL;
inline constexpr double kSecondsPerYear = 365.25 * 24 * 3600;

/// Monotonic simulated clock; advanced by device latencies and workload gaps.
class SimClock {
 public:
  [[nodiscard]] SimTime now() const noexcept { return now_us_; }

  /// Advance by `us` microseconds.
  void advance_us(SimTime us) noexcept { now_us_ += us; }

  /// Advance to an absolute time; no-op when `t` is in the past (device
  /// operations may already have pushed the clock beyond a trace timestamp).
  void advance_to(SimTime t) noexcept {
    if (t > now_us_) now_us_ = t;
  }

  /// Advance by (possibly fractional) seconds; sub-microsecond remainders are
  /// accumulated so long runs do not drift.
  void advance_seconds(double s) noexcept;

  /// Current time in seconds / years (for reporting).
  [[nodiscard]] double seconds() const noexcept {
    return static_cast<double>(now_us_) / static_cast<double>(kUsPerSecond);
  }
  [[nodiscard]] double years() const noexcept { return seconds() / kSecondsPerYear; }

  void reset() noexcept {
    now_us_ = 0;
    fraction_us_ = 0.0;
  }

 private:
  SimTime now_us_ = 0;
  double fraction_us_ = 0.0;
};

/// Converts seconds to simulated microseconds (rounds down; saturates at the
/// SimTime range so "effectively forever" horizons stay well defined).
[[nodiscard]] constexpr SimTime seconds_to_us(double s) noexcept {
  if (s <= 0.0) return 0;
  const double us = s * static_cast<double>(kUsPerSecond);
  // 2^64 as a double; anything at or beyond saturates.
  if (us >= 18446744073709551616.0) return ~SimTime{0};
  return static_cast<SimTime>(us);
}

}  // namespace swl

#endif  // SWL_CORE_CLOCK_HPP
