// Clang thread-safety-analysis annotations.
//
// Under clang, these macros expand to the static-analysis attributes behind
// -Wthread-safety (promoted to errors in the top-level CMakeLists), so lock
// discipline — which mutex guards which state, which functions require or
// exclude which locks — is checked at compile time. Under GCC and MSVC they
// expand to nothing; CI's clang job keeps the wall standing for every change.
//
// Usage (see also src/core/sync.hpp for the CAPABILITY-annotated primitives):
//
//   core::Mutex mu_;
//   std::deque<Task> queue_ GUARDED_BY(mu_);   // access only with mu_ held
//   void drain() REQUIRES(mu_);                // caller must hold mu_
//   void submit(Task t) EXCLUDES(mu_);         // caller must NOT hold mu_
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#ifndef SWL_CORE_ANNOTATIONS_HPP
#define SWL_CORE_ANNOTATIONS_HPP

#if defined(__clang__) && (!defined(SWL_NO_THREAD_SAFETY_ANALYSIS))
#define SWL_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SWL_THREAD_ANNOTATION__(x)  // no-op on non-clang compilers
#endif

/// Marks a class as a lockable capability (e.g. a mutex wrapper).
#define CAPABILITY(x) SWL_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class that acquires a capability at construction and
/// releases it at destruction.
#define SCOPED_CAPABILITY SWL_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while the given capability is held.
#define GUARDED_BY(x) SWL_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define PT_GUARDED_BY(x) SWL_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function that acquires the capability (and does not release it).
#define ACQUIRE(...) SWL_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function that releases the capability.
#define RELEASE(...) SWL_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns `ret`.
#define TRY_ACQUIRE(ret, ...) SWL_THREAD_ANNOTATION__(try_acquire_capability(ret, __VA_ARGS__))

/// Caller must hold the capability to call this function.
#define REQUIRES(...) SWL_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention).
#define EXCLUDES(...) SWL_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability.
#define ASSERT_CAPABILITY(x) SWL_THREAD_ANNOTATION__(assert_capability(x))

/// Function returning a reference to the given capability.
#define RETURN_CAPABILITY(x) SWL_THREAD_ANNOTATION__(lock_returned(x))

/// Ordering hint: this capability must be acquired after `...`.
#define ACQUIRED_AFTER(...) SWL_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Ordering hint: this capability must be acquired before `...`.
#define ACQUIRED_BEFORE(...) SWL_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

/// Escape hatch: disables analysis inside one function. Every use must carry
/// a comment explaining why the analysis cannot see the invariant.
#define NO_THREAD_SAFETY_ANALYSIS SWL_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // SWL_CORE_ANNOTATIONS_HPP
