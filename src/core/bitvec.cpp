#include "core/bitvec.hpp"

#include <bit>

#include "core/contracts.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace swl {

namespace {

constexpr std::size_t word_count_for(std::size_t bits) noexcept {
  return (bits + 63) / 64;
}

// -- word-run scanning -------------------------------------------------------
//
// The cyclic scans below spend almost all their time skipping words that are
// entirely uninteresting (all-set for the zero scan, all-zero for the set
// scan). find_word_not() finds the first word in [begin, end) that differs
// from `sentinel`, or `end`. The AVX2 path compares four words per iteration;
// the dispatch is resolved once per process via __builtin_cpu_supports, so
// machines without AVX2 fall back to the scalar loop transparently. Both
// paths visit words in the same order and return the same index, so the
// choice can never change a scan result.

using FindWordNotFn = std::size_t (*)(const std::uint64_t*, std::size_t, std::size_t,
                                      std::uint64_t);

std::size_t find_word_not_scalar(const std::uint64_t* words, std::size_t begin, std::size_t end,
                                 std::uint64_t sentinel) {
  for (std::size_t i = begin; i < end; ++i) {
    if (words[i] != sentinel) return i;
  }
  return end;
}

#if defined(__x86_64__)
__attribute__((target("avx2"))) std::size_t find_word_not_avx2(const std::uint64_t* words,
                                                               std::size_t begin, std::size_t end,
                                                               std::uint64_t sentinel) {
  std::size_t i = begin;
  const __m256i needle = _mm256_set1_epi64x(static_cast<long long>(sentinel));
  for (; i + 4 <= end; i += 4) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    const auto eq = static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi64(v, needle)));
    if (eq != 0xFFFFFFFFu) {
      // Each 64-bit lane contributes 8 movemask bits; the first lane that is
      // not all-ones is the first mismatching word.
      return i + (static_cast<std::size_t>(std::countr_one(eq)) >> 3);
    }
  }
  for (; i < end; ++i) {
    if (words[i] != sentinel) return i;
  }
  return end;
}

FindWordNotFn resolve_find_word_not() {
  return __builtin_cpu_supports("avx2") ? &find_word_not_avx2 : &find_word_not_scalar;
}
#else
FindWordNotFn resolve_find_word_not() { return &find_word_not_scalar; }
#endif

std::size_t find_word_not(const std::uint64_t* words, std::size_t begin, std::size_t end,
                          std::uint64_t sentinel) {
  static const FindWordNotFn fn = resolve_find_word_not();
  return fn(words, begin, end, sentinel);
}

}  // namespace

BitVec::BitVec(std::size_t size) : words_(word_count_for(size), 0), size_(size) {}





std::size_t BitVec::next_zero_cyclic(std::size_t start) const {
  SWL_REQUIRE(size_ > 0 && start < size_, "scan start out of range");
  SWL_REQUIRE(!all_set(), "no zero bit to find");
  // Bits at or beyond size_ in the tail word are storage-guaranteed zero but
  // are not valid positions, so the scan treats them as set. The stored tail
  // word therefore always looks "interesting" to find_word_not; scan_range
  // re-checks it with the tail mask applied before trusting it.
  const std::size_t nwords = words_.size();
  const std::size_t tail_bits = size_ % kWordBits;
  const std::uint64_t tail_mask = tail_bits == 0 ? 0 : ~((1ULL << tail_bits) - 1);
  constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

  const auto scan_range = [&](std::size_t begin, std::size_t end) -> std::size_t {
    for (std::size_t wi = begin; wi < end; ++wi) {
      wi = find_word_not(words_.data(), wi, end, ~0ULL);
      if (wi == end) break;
      std::uint64_t w = words_[wi];
      if (wi == nwords - 1) w |= tail_mask;
      if (w != ~0ULL) {
        return wi * kWordBits + static_cast<std::size_t>(std::countr_one(w));
      }
    }
    return kNotFound;
  };

  // Start word first, with bits below `start` counting as set; then forward
  // to the end; then wrap around, revisiting the start word unmasked so a
  // zero bit below `start` is still found on the way back.
  const std::size_t start_word = start / kWordBits;
  const std::size_t start_bit = start % kWordBits;
  std::uint64_t w = words_[start_word] | (start_bit == 0 ? 0 : (1ULL << start_bit) - 1);
  if (start_word == nwords - 1) w |= tail_mask;
  if (w != ~0ULL) {
    return start_word * kWordBits + static_cast<std::size_t>(std::countr_one(w));
  }
  std::size_t found = scan_range(start_word + 1, nwords);
  if (found == kNotFound) found = scan_range(0, start_word + 1);
  SWL_ASSERT(found != kNotFound, "unreachable: !all_set() guarantees a zero bit");
  return found;
}

std::size_t BitVec::next_set_cyclic(std::size_t start) const {
  SWL_REQUIRE(size_ > 0 && start < size_, "scan start out of range");
  SWL_REQUIRE(!none_set(), "no set bit to find");
  // Stray bits beyond size_ are storage-guaranteed zero, so no tail handling
  // is needed: a nonzero word always holds a valid set position.
  const std::size_t nwords = words_.size();
  const std::size_t start_word = start / kWordBits;
  const std::size_t start_bit = start % kWordBits;
  const std::uint64_t w =
      words_[start_word] & (start_bit == 0 ? ~0ULL : ~((1ULL << start_bit) - 1));
  if (w != 0) {
    return start_word * kWordBits + static_cast<std::size_t>(std::countr_zero(w));
  }
  std::size_t wi = find_word_not(words_.data(), start_word + 1, nwords, 0);
  if (wi == nwords) {
    wi = find_word_not(words_.data(), 0, start_word + 1, 0);
    SWL_ASSERT(wi != start_word + 1, "unreachable: !none_set() guarantees a set bit");
  }
  return wi * kWordBits + static_cast<std::size_t>(std::countr_zero(words_[wi]));
}

void BitVec::resize(std::size_t size) {
  // Drop stray bits if shrinking, then recount.
  std::vector<std::uint64_t> words = std::move(words_);
  words.resize(word_count_for(size), 0);
  assign(std::move(words), size);
}

void BitVec::assign(std::vector<std::uint64_t> words, std::size_t size) {
  SWL_REQUIRE(words.size() >= word_count_for(size), "word buffer too small for bit size");
  words.resize(word_count_for(size));
  // Zero bits beyond `size` in the tail word so popcounts stay exact.
  const std::size_t tail_bits = size % kWordBits;
  if (tail_bits != 0 && !words.empty()) {
    words.back() &= (1ULL << tail_bits) - 1;
  }
  words_ = std::move(words);
  size_ = size;
  count_ = 0;
  for (const auto w : words_) count_ += static_cast<std::size_t>(std::popcount(w));
}

}  // namespace swl
