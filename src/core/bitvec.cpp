#include "core/bitvec.hpp"

#include <bit>

#include "core/contracts.hpp"

namespace swl {

namespace {

constexpr std::size_t kWordBits = 64;

constexpr std::size_t word_count_for(std::size_t bits) noexcept {
  return (bits + kWordBits - 1) / kWordBits;
}

}  // namespace

BitVec::BitVec(std::size_t size) : words_(word_count_for(size), 0), size_(size) {}

bool BitVec::test(std::size_t i) const {
  SWL_REQUIRE(i < size_, "bit index out of range");
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

bool BitVec::set(std::size_t i) {
  SWL_REQUIRE(i < size_, "bit index out of range");
  std::uint64_t& w = words_[i / kWordBits];
  const std::uint64_t mask = 1ULL << (i % kWordBits);
  if (w & mask) return false;
  w |= mask;
  ++count_;
  return true;
}

bool BitVec::clear(std::size_t i) {
  SWL_REQUIRE(i < size_, "bit index out of range");
  std::uint64_t& w = words_[i / kWordBits];
  const std::uint64_t mask = 1ULL << (i % kWordBits);
  if (!(w & mask)) return false;
  w &= ~mask;
  --count_;
  return true;
}

void BitVec::reset() noexcept {
  for (auto& w : words_) w = 0;
  count_ = 0;
}

std::size_t BitVec::next_zero_cyclic(std::size_t start) const {
  SWL_REQUIRE(size_ > 0 && start < size_, "scan start out of range");
  SWL_REQUIRE(!all_set(), "no zero bit to find");
  std::size_t i = start;
  // First, finish the word `start` lands in bit-by-bit; then skip whole words.
  while (true) {
    const std::size_t wi = i / kWordBits;
    const std::size_t bi = i % kWordBits;
    const std::uint64_t w = words_[wi];
    if (bi == 0 && w == ~0ULL) {
      // whole word set: jump to next word
      i = (wi + 1) * kWordBits;
      if (i >= size_) i = 0;
      continue;
    }
    if (!((w >> bi) & 1ULL)) return i;
    ++i;
    if (i >= size_) i = 0;
  }
}

void BitVec::resize(std::size_t size) {
  // Drop stray bits if shrinking, then recount.
  std::vector<std::uint64_t> words = std::move(words_);
  words.resize(word_count_for(size), 0);
  assign(std::move(words), size);
}

void BitVec::assign(std::vector<std::uint64_t> words, std::size_t size) {
  SWL_REQUIRE(words.size() >= word_count_for(size), "word buffer too small for bit size");
  words.resize(word_count_for(size));
  // Zero bits beyond `size` in the tail word so popcounts stay exact.
  const std::size_t tail_bits = size % kWordBits;
  if (tail_bits != 0 && !words.empty()) {
    words.back() &= (1ULL << tail_bits) - 1;
  }
  words_ = std::move(words);
  size_ = size;
  count_ = 0;
  for (const auto w : words_) count_ += static_cast<std::size_t>(std::popcount(w));
}

}  // namespace swl
