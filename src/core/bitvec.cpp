#include "core/bitvec.hpp"

#include <bit>

#include "core/contracts.hpp"

namespace swl {

namespace {

constexpr std::size_t kWordBits = 64;

constexpr std::size_t word_count_for(std::size_t bits) noexcept {
  return (bits + kWordBits - 1) / kWordBits;
}

}  // namespace

BitVec::BitVec(std::size_t size) : words_(word_count_for(size), 0), size_(size) {}

bool BitVec::test(std::size_t i) const {
  SWL_REQUIRE(i < size_, "bit index out of range");
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

bool BitVec::set(std::size_t i) {
  SWL_REQUIRE(i < size_, "bit index out of range");
  std::uint64_t& w = words_[i / kWordBits];
  const std::uint64_t mask = 1ULL << (i % kWordBits);
  if (w & mask) return false;
  w |= mask;
  ++count_;
  return true;
}

bool BitVec::clear(std::size_t i) {
  SWL_REQUIRE(i < size_, "bit index out of range");
  std::uint64_t& w = words_[i / kWordBits];
  const std::uint64_t mask = 1ULL << (i % kWordBits);
  if (!(w & mask)) return false;
  w &= ~mask;
  --count_;
  return true;
}

void BitVec::reset() noexcept {
  for (auto& w : words_) w = 0;
  count_ = 0;
}

std::size_t BitVec::next_zero_cyclic(std::size_t start) const {
  SWL_REQUIRE(size_ > 0 && start < size_, "scan start out of range");
  SWL_REQUIRE(!all_set(), "no zero bit to find");
  // Word-at-a-time: a word with a zero bit yields its position in one
  // countr_one; fully-set words are skipped with a single compare. Bits at or
  // beyond size_ in the tail word are storage-guaranteed zero but are not
  // valid positions, so the scan treats them as set.
  const std::size_t nwords = words_.size();
  const std::size_t tail_bits = size_ % kWordBits;
  const std::uint64_t tail_mask = tail_bits == 0 ? 0 : ~((1ULL << tail_bits) - 1);
  std::size_t wi = start / kWordBits;
  const std::size_t start_bit = start % kWordBits;
  // Bits before `start` count as set on the first visit; the extra iteration
  // (<= nwords) revisits the start word unmasked after wrapping.
  std::uint64_t w = words_[wi] | (start_bit == 0 ? 0 : (1ULL << start_bit) - 1);
  for (std::size_t step = 0; step <= nwords; ++step) {
    if (wi == nwords - 1) w |= tail_mask;
    if (w != ~0ULL) {
      return wi * kWordBits + static_cast<std::size_t>(std::countr_one(w));
    }
    wi = wi + 1 == nwords ? 0 : wi + 1;
    w = words_[wi];
  }
  SWL_ASSERT(false, "unreachable: !all_set() guarantees a zero bit");
  return start;
}

void BitVec::resize(std::size_t size) {
  // Drop stray bits if shrinking, then recount.
  std::vector<std::uint64_t> words = std::move(words_);
  words.resize(word_count_for(size), 0);
  assign(std::move(words), size);
}

void BitVec::assign(std::vector<std::uint64_t> words, std::size_t size) {
  SWL_REQUIRE(words.size() >= word_count_for(size), "word buffer too small for bit size");
  words.resize(word_count_for(size));
  // Zero bits beyond `size` in the tail word so popcounts stay exact.
  const std::size_t tail_bits = size % kWordBits;
  if (tail_bits != 0 && !words.empty()) {
    words.back() &= (1ULL << tail_bits) - 1;
  }
  words_ = std::move(words);
  size_ = size;
  count_ = 0;
  for (const auto w : words_) count_ += static_cast<std::size_t>(std::popcount(w));
}

}  // namespace swl
