// Deterministic random number generation for reproducible simulations.
//
// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
// seeded via SplitMix64 so that any 64-bit seed yields a well-mixed state.
// Every simulation component takes an explicit Rng (or a seed) so that runs
// are bit-for-bit reproducible across platforms — std::mt19937 distributions
// are not portable, hence the bespoke samplers below.
#ifndef SWL_CORE_RNG_HPP
#define SWL_CORE_RNG_HPP

#include <array>
#include <cstdint>
#include <vector>

namespace swl {

/// xoshiro256** pseudo-random generator with portable samplers.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// UniformRandomBitGenerator interface (usable with <random> if desired).
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Forks an independent stream (seeded from this stream's output);
  /// used to give each workload component its own generator.
  Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

/// Discrete Zipf(s) sampler over {0, 1, ..., n-1} via inverse-CDF table.
/// Rank 0 is the most popular item. Used to model hot/cold skew.
class ZipfSampler {
 public:
  /// Requires n > 0 and s >= 0 (s == 0 degenerates to uniform).
  ZipfSampler(std::uint64_t n, double s);

  std::uint64_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::uint64_t size() const noexcept { return n_; }
  [[nodiscard]] double skew() const noexcept { return s_; }

 private:
  std::uint64_t n_;
  double s_;
  // cdf_[i] = P(rank <= i); binary-searched at sample time.
  std::vector<double> cdf_;
};

}  // namespace swl

#endif  // SWL_CORE_RNG_HPP
