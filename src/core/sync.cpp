#include "core/sync.hpp"

#include <sstream>

#include "core/contracts.hpp"

namespace swl {

void ThreadChecker::fail(const char* what) {
  std::ostringstream os;
  os << "thread-confinement violation: " << what
     << " called from a thread that does not own the object (see core/sync.hpp ThreadChecker)";
  throw InvariantError(os.str());
}

}  // namespace swl
