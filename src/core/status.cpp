#include "core/status.hpp"

#include <ostream>
#include <sstream>

#include "core/contracts.hpp"

namespace swl::detail {

void status_check_fail(const char* expr, const char* file, int line, Status got) {
  std::ostringstream os;
  os << "status check failed: " << expr << " returned " << to_string(got) << " at " << file << ':'
     << line;
  throw InvariantError(os.str());
}

}  // namespace swl::detail

namespace swl {

std::string_view to_string(Status s) noexcept {
  switch (s) {
    case Status::ok:
      return "ok";
    case Status::page_already_programmed:
      return "page_already_programmed";
    case Status::block_worn_out:
      return "block_worn_out";
    case Status::bad_block:
      return "bad_block";
    case Status::page_not_programmed:
      return "page_not_programmed";
    case Status::lba_not_mapped:
      return "lba_not_mapped";
    case Status::program_failed:
      return "program_failed";
    case Status::erase_failed:
      return "erase_failed";
    case Status::out_of_space:
      return "out_of_space";
    case Status::busy:
      return "busy";
    case Status::corrupt_snapshot:
      return "corrupt_snapshot";
    case Status::io_error:
      return "io_error";
    case Status::file_not_found:
      return "file_not_found";
    case Status::file_exists:
      return "file_exists";
    case Status::invalid_name:
      return "invalid_name";
    case Status::fs_full:
      return "fs_full";
  }
  return "unknown";
}

std::ostream& operator<<(std::ostream& os, Status s) { return os << to_string(s); }

}  // namespace swl
