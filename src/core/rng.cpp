#include "core/rng.hpp"

#include <cmath>

#include "core/contracts.hpp"

namespace swl {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method; bound == 0 would be a caller bug but
  // noexcept forbids throwing — clamp to 1 to stay well defined.
  if (bound == 0) bound = 1;
  while (true) {
    const std::uint64_t x = next();
    const auto m = static_cast<unsigned __int128>(x) * bound;
    const auto lo = static_cast<std::uint64_t>(m);
    if (lo >= bound || lo >= (-bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) noexcept {
  if (hi < lo) hi = lo;
  return lo + below(hi - lo + 1);
}

double Rng::uniform() noexcept {
  // 53 top bits → uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept { return uniform() < p; }

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  if (u >= 1.0) u = 0.9999999999999999;
  return -mean * std::log1p(-u);
}

Rng Rng::fork() noexcept { return Rng(next()); }

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  SWL_REQUIRE(n > 0, "zipf population must be non-empty");
  SWL_REQUIRE(s >= 0.0, "zipf skew must be non-negative");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::uint64_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  // first index with cdf_[i] >= u
  std::uint64_t lo = 0;
  std::uint64_t hi = n_ - 1;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace swl
