// Seeded random bijection over [0, size) — used to scatter the synthetic
// workload's logical regions across the LBA space the way a real file system
// scatters files over a disk.
//
// Implementation: a 4-round Feistel network over the smallest even-width bit
// domain covering `size`, with cycle walking (re-apply until the value lands
// inside [0, size)). Both directions are deterministic functions of the
// seed; forward() is a bijection on [0, size).
#ifndef SWL_CORE_PERMUTATION_HPP
#define SWL_CORE_PERMUTATION_HPP

#include <array>
#include <cstdint>

namespace swl {

class RandomPermutation {
 public:
  /// Bijection over [0, size). Requires size >= 1.
  explicit RandomPermutation(std::uint64_t size, std::uint64_t seed = 0x5ca77e2ULL);

  /// Image of x under the permutation. Requires x < size().
  [[nodiscard]] std::uint64_t forward(std::uint64_t x) const;

  [[nodiscard]] std::uint64_t operator()(std::uint64_t x) const { return forward(x); }

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

 private:
  [[nodiscard]] std::uint64_t feistel(std::uint64_t x) const noexcept;

  std::uint64_t size_;
  std::uint32_t half_bits_;
  std::uint64_t half_mask_;
  std::array<std::uint64_t, 4> keys_{};
};

}  // namespace swl

#endif  // SWL_CORE_PERMUTATION_HPP
