// Operation status codes for flash and translation-layer operations.
//
// Expected, recoverable outcomes (a worn-out block, a read of an unmapped
// LBA) are reported through Status values; contract violations throw.
#ifndef SWL_CORE_STATUS_HPP
#define SWL_CORE_STATUS_HPP

#include <iosfwd>
#include <string_view>

namespace swl {

enum class Status {
  ok,
  /// Page was already programmed; NAND pages are program-once between erases.
  page_already_programmed,
  /// Block reached its endurance limit and can no longer be erased reliably.
  block_worn_out,
  /// Block was previously retired as bad.
  bad_block,
  /// Read of a page that holds no valid data.
  page_not_programmed,
  /// Translation layer has no mapping for the requested LBA.
  lba_not_mapped,
  /// Program operation failed (injected media error); the page is consumed.
  program_failed,
  /// Erase operation failed (injected media error); the block is retired.
  erase_failed,
  /// No free page/block could be allocated even after garbage collection.
  out_of_space,
  /// Persistent state (e.g. a BET snapshot) failed checksum validation.
  corrupt_snapshot,
  /// A host-side I/O operation (snapshot file write, flush, rename) failed.
  io_error,
  /// File-system: no such file.
  file_not_found,
  /// File-system: a file with that name already exists.
  file_exists,
  /// File-system: name empty or too long for a directory entry.
  invalid_name,
  /// File-system: no free cluster / directory entry left.
  fs_full,
};

/// Human-readable name of a status code (for logs and test diagnostics).
[[nodiscard]] std::string_view to_string(Status s) noexcept;

std::ostream& operator<<(std::ostream& os, Status s);

/// True when the status denotes success.
[[nodiscard]] constexpr bool ok(Status s) noexcept { return s == Status::ok; }

}  // namespace swl

#endif  // SWL_CORE_STATUS_HPP
