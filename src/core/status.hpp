// Operation status codes for flash and translation-layer operations.
//
// Expected, recoverable outcomes (a worn-out block, a read of an unmapped
// LBA) are reported through Status values; contract violations throw.
#ifndef SWL_CORE_STATUS_HPP
#define SWL_CORE_STATUS_HPP

#include <iosfwd>
#include <string_view>

namespace swl {

// [[nodiscard]] on the *type*: every function returning a Status — today's and
// tomorrow's — is implicitly nodiscard, so a silently dropped error code fails
// the build under -Werror=unused-result (enabled unconditionally in the
// top-level CMakeLists). Intentional discards must go through the named
// helpers below, never a bare (void) cast, so they remain grep-able.
enum class [[nodiscard]] Status {
  ok,
  /// Page was already programmed; NAND pages are program-once between erases.
  page_already_programmed,
  /// Block reached its endurance limit and can no longer be erased reliably.
  block_worn_out,
  /// Block was previously retired as bad.
  bad_block,
  /// Read of a page that holds no valid data.
  page_not_programmed,
  /// Translation layer has no mapping for the requested LBA.
  lba_not_mapped,
  /// Program operation failed (injected media error); the page is consumed.
  program_failed,
  /// Erase operation failed (injected media error); the block is retired.
  erase_failed,
  /// No free page/block could be allocated even after garbage collection.
  out_of_space,
  /// The operation would block (a bounded queue/ring is full) and the caller
  /// asked for a non-blocking attempt; retry after making progress.
  busy,
  /// Persistent state (e.g. a BET snapshot) failed checksum validation.
  corrupt_snapshot,
  /// A host-side I/O operation (snapshot file write, flush, rename) failed.
  io_error,
  /// File-system: no such file.
  file_not_found,
  /// File-system: a file with that name already exists.
  file_exists,
  /// File-system: name empty or too long for a directory entry.
  invalid_name,
  /// File-system: no free cluster / directory entry left.
  fs_full,
};

/// Human-readable name of a status code (for logs and test diagnostics).
[[nodiscard]] std::string_view to_string(Status s) noexcept;

std::ostream& operator<<(std::ostream& os, Status s);

/// True when the status denotes success.
[[nodiscard]] constexpr bool ok(Status s) noexcept { return s == Status::ok; }

/// Deliberately discards a Status whose failure is benign *by design* at the
/// call site (e.g. best-effort invalidation of a page that a crash may already
/// have consumed). Every call must carry a comment saying why the failure is
/// benign. Named (instead of a bare `(void)` cast) so discards stay grep-able
/// and flash_lint can audit them.
constexpr void discard_status(Status /*unused*/) noexcept {}

}  // namespace swl

/// Asserts that `expr` (a Status expression) evaluated to Status::ok; for call
/// sites where a failure is impossible by construction (e.g. programming a
/// page just handed out by the free-block pool on fast media). Throws
/// swl::InvariantError with the status name otherwise — never silently drops.
#define SWL_CHECK_OK(expr)                                                        \
  do {                                                                            \
    const ::swl::Status swl_check_ok_status_ = (expr);                            \
    if (!::swl::ok(swl_check_ok_status_))                                         \
      ::swl::detail::status_check_fail(#expr, __FILE__, __LINE__,                 \
                                       swl_check_ok_status_);                     \
  } while (false)

namespace swl::detail {
[[noreturn]] void status_check_fail(const char* expr, const char* file, int line, Status got);
}  // namespace swl::detail

#endif  // SWL_CORE_STATUS_HPP
