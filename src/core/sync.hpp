// Capability-annotated synchronization primitives.
//
// Thin wrappers over the standard primitives that carry the clang
// thread-safety attributes from core/annotations.hpp, so that lock discipline
// on the state they guard is verified at compile time (-Wthread-safety under
// clang; see CI's clang job). All concurrent code in the tree uses these —
// never raw std::mutex / std::condition_variable — so every piece of shared
// mutable state can be GUARDED_BY a named capability.
//
// ThreadChecker covers the complementary case: state that is *not* shared but
// thread-confined by design (a sweep point's NandChip, a Simulator's perf
// counters). It asserts, in debug builds, that all checked operations happen
// on the owning thread, turning an accidental cross-thread use into an
// immediate contract failure instead of a data race.
#ifndef SWL_CORE_SYNC_HPP
#define SWL_CORE_SYNC_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "core/annotations.hpp"

namespace swl {

/// A std::mutex carrying the `capability` annotation. Prefer MutexLock for
/// scoped acquisition; call lock()/unlock() directly only where RAII does not
/// fit (and the annotations will hold you to balancing them).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for interop with CondVar only.
  [[nodiscard]] std::mutex& native() noexcept { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII scoped lock over core::Mutex (the annotated std::lock_guard).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to core::Mutex.
///
/// wait() takes the Mutex directly and is annotated REQUIRES(mu): the analysis
/// verifies the caller holds the lock across the wait. Use an explicit
/// `while (!condition) cv.wait(mu);` loop rather than a predicate lambda —
/// clang's analysis cannot see through the lambda indirection, the loop it
/// verifies completely.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires `mu` before returning.
  void wait(Mutex& mu) REQUIRES(mu) {
    // adopt_lock: `mu` is already held (enforced statically); release() keeps
    // the unique_lock from unlocking it again on destruction.
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Futex-style parking for lock-free producer/consumer rings (an event count).
///
/// The problem it solves: a consumer draining a lock-free ring must sleep
/// when the ring is empty, and a producer must be able to wake it — without
/// putting a mutex on the producers' hot path. EventCount gives the standard
/// two-phase answer (as used by folly::EventCount and Linux futex users):
///
///   // waiter                                 // signaler
///   const std::uint64_t t = ec.prepare_wait();  push(item);
///   if (work_available()) {                     ec.notify();
///     ec.cancel_wait();
///   } else {
///     ec.wait(t);   // sleeps unless notify() ran since prepare_wait()
///   }
///
/// notify() is cheap when nobody waits: one seq_cst fence plus one atomic
/// load — no lock, no syscall. The seq_cst fences in prepare_wait() and
/// notify() close the classic lost-wakeup race (waiter checks the ring, then
/// signaler pushes and checks for waiters, each missing the other): with
/// both fences in the single total order, either the waiter's re-check sees
/// the push, or the signaler's waiter-check sees the waiter.
///
/// Spurious wakeups are allowed (wait() may return without a notify());
/// callers always re-check their condition in a loop. Supports any number of
/// concurrent waiters; notify() wakes them all.
class EventCount {
 public:
  EventCount() = default;
  EventCount(const EventCount&) = delete;
  EventCount& operator=(const EventCount&) = delete;

  /// Phase 1 of waiting: announce intent and take a ticket. The caller must
  /// re-check its wakeup condition after this call and either cancel_wait()
  /// (condition already true) or wait() with the ticket.
  [[nodiscard]] std::uint64_t prepare_wait() EXCLUDES(mu_) {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const MutexLock lock(mu_);
    return generation_;
  }

  /// Abandons a prepared wait (the re-check found the condition true).
  void cancel_wait() noexcept { waiters_.fetch_sub(1, std::memory_order_seq_cst); }

  /// Phase 2: blocks until a notify() issued after the ticket was taken (or
  /// a spurious wakeup; callers re-check in a loop either way).
  void wait(std::uint64_t ticket) EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      while (generation_ == ticket) cv_.wait(mu_);
    }
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }

  /// Wakes every waiter that prepared before this call. Cheap (fence + one
  /// load, no lock) when nobody is waiting — safe to call per pushed item.
  void notify() EXCLUDES(mu_) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) == 0) return;
    {
      const MutexLock lock(mu_);
      ++generation_;
    }
    cv_.notify_all();
  }

 private:
  std::atomic<std::uint64_t> waiters_{0};
  Mutex mu_;
  CondVar cv_;
  std::uint64_t generation_ GUARDED_BY(mu_) = 0;
};

/// Debug-build thread-confinement assertion (compiled out under NDEBUG).
///
/// Most simulator state is deliberately unsynchronized: every sweep point
/// owns its SimClock, Rng, NandChip and Simulator, and the sweep runner's
/// determinism guarantee rests on that confinement. A ThreadChecker member
/// makes the confinement checkable: the first check() binds the owning
/// thread, every later check() asserts the same thread. An object handed to
/// another thread on purpose (e.g. a chip built on the main thread, then run
/// inside one sweep point) calls detach() at the handoff.
class ThreadChecker {
 public:
  /// Asserts the calling thread owns this object (binding it on first use).
  /// `what` names the operation for the failure message.
  void check(const char* what) const {
#ifndef NDEBUG
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};  // unbound
    if (owner_.compare_exchange_strong(expected, self, std::memory_order_relaxed)) return;
    if (expected != self) fail(what);
#else
    (void)what;
#endif
  }

  /// Unbinds: the next check() re-binds to its calling thread. Call at a
  /// deliberate ownership handoff.
  void detach() noexcept { owner_.store(std::thread::id{}, std::memory_order_relaxed); }

 private:
  [[noreturn]] static void fail(const char* what);

  mutable std::atomic<std::thread::id> owner_{};
};

}  // namespace swl

#endif  // SWL_CORE_SYNC_HPP
