#include "core/permutation.hpp"

#include <bit>

#include "core/contracts.hpp"
#include "core/rng.hpp"

namespace swl {

RandomPermutation::RandomPermutation(std::uint64_t size, std::uint64_t seed) : size_(size) {
  SWL_REQUIRE(size >= 1, "permutation domain must be non-empty");
  // Smallest even bit width whose range covers size (minimum 2 bits so both
  // Feistel halves are non-trivial).
  std::uint32_t bits = std::max<std::uint32_t>(2, std::bit_width(size - 1));
  if (bits % 2 != 0) ++bits;
  half_bits_ = bits / 2;
  half_mask_ = (1ULL << half_bits_) - 1;
  Rng rng(seed);
  for (auto& k : keys_) k = rng.next();
}

std::uint64_t RandomPermutation::feistel(std::uint64_t x) const noexcept {
  std::uint64_t left = (x >> half_bits_) & half_mask_;
  std::uint64_t right = x & half_mask_;
  for (const auto key : keys_) {
    // SplitMix-style round function of (right, key).
    std::uint64_t f = right + key + 0x9E3779B97F4A7C15ULL;
    f = (f ^ (f >> 30)) * 0xBF58476D1CE4E5B9ULL;
    f = (f ^ (f >> 27)) * 0x94D049BB133111EBULL;
    f ^= f >> 31;
    const std::uint64_t next_left = right;
    right = (left ^ f) & half_mask_;
    left = next_left;
  }
  return (left << half_bits_) | right;
}

std::uint64_t RandomPermutation::forward(std::uint64_t x) const {
  SWL_REQUIRE(x < size_, "permutation input out of domain");
  // Cycle walking: the Feistel domain is a power of four >= size, so walk
  // until we land back inside [0, size). Terminates because feistel() is a
  // bijection on the covering domain (expected < 4 steps).
  std::uint64_t y = feistel(x);
  while (y >= size_) y = feistel(y);
  return y;
}

}  // namespace swl
