#include "core/clock.hpp"

#include <cmath>

namespace swl {

void SimClock::advance_seconds(double s) noexcept {
  if (s <= 0.0) return;
  const double total_us = s * static_cast<double>(kUsPerSecond) + fraction_us_;
  const double whole = std::floor(total_us);
  fraction_us_ = total_us - whole;
  now_us_ += static_cast<SimTime>(whole);
}

}  // namespace swl
