#include "core/geometry.hpp"

#include <limits>
#include <sstream>

#include "core/contracts.hpp"

namespace swl {

std::string_view to_string(CellType t) noexcept {
  switch (t) {
    case CellType::slc_small_block:
      return "SLC(small-block)";
    case CellType::slc_large_block:
      return "SLC(large-block)";
    case CellType::mlc_x2:
      return "MLCx2";
  }
  return "unknown";
}

bool FlashGeometry::valid() const noexcept {
  if (block_count == 0 || pages_per_block == 0 || page_size_bytes == 0) return false;
  const auto pages = static_cast<std::uint64_t>(block_count) * pages_per_block;
  return pages <= std::numeric_limits<std::uint64_t>::max() / page_size_bytes;
}

NandTiming default_timing(CellType t) noexcept {
  switch (t) {
    case CellType::slc_small_block:
      return NandTiming{.read_page_us = 15, .program_page_us = 200, .erase_block_us = 2000, .endurance = 100'000};
    case CellType::slc_large_block:
      return NandTiming{.read_page_us = 25, .program_page_us = 200, .erase_block_us = 2000, .endurance = 100'000};
    case CellType::mlc_x2:
      return NandTiming{.read_page_us = 50, .program_page_us = 800, .erase_block_us = 1500, .endurance = 10'000};
  }
  return NandTiming{};
}

namespace {

FlashGeometry block_shape(CellType t) {
  switch (t) {
    case CellType::slc_small_block:
      return FlashGeometry{.block_count = 0, .pages_per_block = 32, .page_size_bytes = 512};
    case CellType::slc_large_block:
      return FlashGeometry{.block_count = 0, .pages_per_block = 64, .page_size_bytes = 2048};
    case CellType::mlc_x2:
      return FlashGeometry{.block_count = 0, .pages_per_block = 128, .page_size_bytes = 2048};
  }
  SWL_ASSERT(false, "unreachable cell type");
}

}  // namespace

FlashGeometry make_geometry(CellType t, std::uint64_t capacity_bytes) {
  FlashGeometry g = block_shape(t);
  const std::uint64_t block_bytes =
      static_cast<std::uint64_t>(g.pages_per_block) * g.page_size_bytes;
  SWL_REQUIRE(capacity_bytes > 0 && capacity_bytes % block_bytes == 0,
              "capacity must be a positive multiple of the block size");
  const std::uint64_t blocks = capacity_bytes / block_bytes;
  SWL_REQUIRE(blocks <= std::numeric_limits<BlockIndex>::max() - 1, "too many blocks");
  g.block_count = static_cast<BlockIndex>(blocks);
  return g;
}

FlashGeometry paper_geometry() {
  return make_geometry(CellType::mlc_x2, 1ULL << 30);  // 1 GiB
}

FlashGeometry scaled_geometry(const FlashGeometry& g, BlockIndex block_count) {
  SWL_REQUIRE(block_count > 0, "scaled geometry needs at least one block");
  FlashGeometry s = g;
  s.block_count = block_count;
  return s;
}

std::string describe(const FlashGeometry& g) {
  std::ostringstream os;
  os << g.block_count << " blk x " << g.pages_per_block << " pg x " << g.page_size_bytes
     << " B (" << (g.capacity_bytes() >> 20) << " MiB)";
  return os.str();
}

}  // namespace swl
