// Lightweight precondition / invariant checking for the SWL library.
//
// All checks throw (rather than abort) so that tests can assert on contract
// violations and so that example programs fail with a readable diagnostic.
#ifndef SWL_CORE_CONTRACTS_HPP
#define SWL_CORE_CONTRACTS_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace swl {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant is found broken (a library bug).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void contract_fail_precondition(const char* expr, const char* file, int line,
                                                    const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void contract_fail_invariant(const char* expr, const char* file, int line,
                                                 const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace swl

/// Check a caller-facing precondition; throws swl::PreconditionError on failure.
#define SWL_REQUIRE(expr, msg)                                                       \
  do {                                                                               \
    if (!(expr)) ::swl::detail::contract_fail_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Check an internal invariant; throws swl::InvariantError on failure.
#define SWL_ASSERT(expr, msg)                                                      \
  do {                                                                             \
    if (!(expr)) ::swl::detail::contract_fail_invariant(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#endif  // SWL_CORE_CONTRACTS_HPP
