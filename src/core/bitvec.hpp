// Packed bit vector with popcount-assisted scanning.
//
// This is the storage engine behind the Block Erasing Table (Section 3.2 of
// the paper): one bit per block set, packed 64 to a word so that the cyclic
// scan for a zero flag (Algorithm 1, steps 9–10) can skip fully-set words.
#ifndef SWL_CORE_BITVEC_HPP
#define SWL_CORE_BITVEC_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/contracts.hpp"

namespace swl {

class BitVec {
 public:
  BitVec() = default;

  /// A vector of `size` zero bits.
  explicit BitVec(std::size_t size);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Number of set bits; O(1), maintained incrementally.
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  [[nodiscard]] bool all_set() const noexcept { return count_ == size_; }
  [[nodiscard]] bool none_set() const noexcept { return count_ == 0; }

  // The single-bit operations are inline: they sit on per-write hot paths
  // (BET flag updates, victim-index dirty marks) where an out-of-line call
  // would dominate the bit twiddle.

  /// Value of bit `i`. Requires i < size().
  [[nodiscard]] bool test(std::size_t i) const {
    SWL_REQUIRE(i < size_, "bit index out of range");
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
  }

  /// Sets bit `i`; returns true when the bit transitioned 0 → 1.
  bool set(std::size_t i) {
    SWL_REQUIRE(i < size_, "bit index out of range");
    std::uint64_t& w = words_[i / kWordBits];
    const std::uint64_t mask = 1ULL << (i % kWordBits);
    if (w & mask) return false;
    w |= mask;
    ++count_;
    return true;
  }

  /// Clears bit `i`; returns true when the bit transitioned 1 → 0.
  bool clear(std::size_t i) {
    SWL_REQUIRE(i < size_, "bit index out of range");
    std::uint64_t& w = words_[i / kWordBits];
    const std::uint64_t mask = 1ULL << (i % kWordBits);
    if (!(w & mask)) return false;
    w &= ~mask;
    --count_;
    return true;
  }

  /// Clears every bit.
  void reset() noexcept {
    for (auto& w : words_) w = 0;
    count_ = 0;
  }

  /// Index of the first zero bit at or after `start`, scanning cyclically and
  /// wrapping past the end; requires not all_set() and start < size().
  /// Runs of fully-set words are skipped four at a time on AVX2 hosts
  /// (runtime-dispatched); O(words) worst case, O(1) amortized over a scan.
  [[nodiscard]] std::size_t next_zero_cyclic(std::size_t start) const;

  /// Index of the first set bit at or after `start`, scanning cyclically and
  /// wrapping past the end; requires not none_set() and start < size().
  /// Same word/SIMD skipping as next_zero_cyclic, with all-zero words as the
  /// uninteresting run.
  [[nodiscard]] std::size_t next_set_cyclic(std::size_t start) const;

  /// Resizes to `size` bits, preserving the prefix; new bits are zero.
  void resize(std::size_t size);

  /// Raw 64-bit words (for serialization). The tail word's unused high bits
  /// are guaranteed zero.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept { return words_; }

  /// Rebuilds from raw words + bit size (for deserialization); recomputes the
  /// popcount and zeroes any stray bits beyond `size`.
  void assign(std::vector<std::uint64_t> words, std::size_t size);

 private:
  static constexpr std::size_t kWordBits = 64;

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
  std::size_t count_ = 0;
};

}  // namespace swl

#endif  // SWL_CORE_BITVEC_HPP
