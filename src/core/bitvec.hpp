// Packed bit vector with popcount-assisted scanning.
//
// This is the storage engine behind the Block Erasing Table (Section 3.2 of
// the paper): one bit per block set, packed 64 to a word so that the cyclic
// scan for a zero flag (Algorithm 1, steps 9–10) can skip fully-set words.
#ifndef SWL_CORE_BITVEC_HPP
#define SWL_CORE_BITVEC_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace swl {

class BitVec {
 public:
  BitVec() = default;

  /// A vector of `size` zero bits.
  explicit BitVec(std::size_t size);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Number of set bits; O(1), maintained incrementally.
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  [[nodiscard]] bool all_set() const noexcept { return count_ == size_; }
  [[nodiscard]] bool none_set() const noexcept { return count_ == 0; }

  /// Value of bit `i`. Requires i < size().
  [[nodiscard]] bool test(std::size_t i) const;

  /// Sets bit `i`; returns true when the bit transitioned 0 → 1.
  bool set(std::size_t i);

  /// Clears bit `i`; returns true when the bit transitioned 1 → 0.
  bool clear(std::size_t i);

  /// Clears every bit.
  void reset() noexcept;

  /// Index of the first zero bit at or after `start`, scanning cyclically and
  /// wrapping past the end; requires not all_set() and start < size().
  /// O(words) worst case, O(1) amortized over a full scan.
  [[nodiscard]] std::size_t next_zero_cyclic(std::size_t start) const;

  /// Resizes to `size` bits, preserving the prefix; new bits are zero.
  void resize(std::size_t size);

  /// Raw 64-bit words (for serialization). The tail word's unused high bits
  /// are guaranteed zero.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept { return words_; }

  /// Rebuilds from raw words + bit size (for deserialization); recomputes the
  /// popcount and zeroes any stray bits beyond `size`.
  void assign(std::vector<std::uint64_t> words, std::size_t size);

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
  std::size_t count_ = 0;
};

}  // namespace swl

#endif  // SWL_CORE_BITVEC_HPP
