// Infinite trace derivation — Section 5.1 of the paper.
//
// "In order to come out the first failure time of FTL and NFTL, a virtually
// unlimited experiment trace was also derived based on the collected trace
// by randomly picking up any 10-minute trace segment in the trace."
//
// SegmentReplaySource wraps a finite base trace and yields an endless stream:
// each round it picks a uniformly random window of `segment_s` seconds from
// the base trace and replays the records inside it, re-based onto a
// continuously advancing timeline.
#ifndef SWL_TRACE_SEGMENT_REPLAY_HPP
#define SWL_TRACE_SEGMENT_REPLAY_HPP

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "trace/trace.hpp"

namespace swl::trace {

class SegmentReplaySource final : public TraceSource {
 public:
  /// `base` must stay alive for the lifetime of the source and must contain
  /// at least one record; records must be sorted by time.
  SegmentReplaySource(const Trace& base, double segment_s = 600.0,
                      std::uint64_t seed = 0x5e9);

  /// Never returns std::nullopt.
  std::optional<TraceRecord> next() override;

  /// Infinite source: always fills all n records. Copies whole per-segment
  /// slices of the base trace and re-bases the timestamps in place.
  std::size_t next_batch(TraceRecord* out, std::size_t n) override;

  /// Segments replayed so far (for diagnostics).
  [[nodiscard]] std::uint64_t segments_started() const noexcept { return segments_; }

 private:
  void pick_segment();

  /// Index of the first base record with time_us >= t — the same element
  /// std::lower_bound over the whole trace finds, located via the bucket
  /// index below so each probe touches only one bucket's worth of records.
  [[nodiscard]] std::size_t first_at_or_after(SimTime t) const;

  const Trace& base_;
  SimTime segment_us_;
  SimTime base_duration_us_;
  // Time-bucket index over the base trace: bucket_[b] is the index of the
  // first record with time_us >= (b << bucket_shift_), with one sentinel
  // entry (== base_.size()) at the end. Without it every pick_segment runs
  // two full binary searches over the base trace — dozens of random DRAM
  // probes per segment; the buckets narrow both to one bucket's span.
  std::vector<std::size_t> bucket_;
  unsigned bucket_shift_ = 0;
  Rng rng_;
  std::size_t pos_ = 0;        // next record within the current segment
  std::size_t segment_end_ = 0;
  SimTime segment_start_us_ = 0;   // window start within the base trace
  SimTime timeline_offset_us_ = 0; // maps window time onto the output timeline
  std::uint64_t segments_ = 0;
};

}  // namespace swl::trace

#endif  // SWL_TRACE_SEGMENT_REPLAY_HPP
