// Aggregate statistics of a trace — used to validate that the synthetic
// workload reproduces the properties the paper reports for its trace
// (Section 5.1) and that the substitution documented in DESIGN.md holds.
#ifndef SWL_TRACE_TRACE_STATS_HPP
#define SWL_TRACE_TRACE_STATS_HPP

#include <cstdint>

#include "core/types.hpp"
#include "trace/trace.hpp"

namespace swl::trace {

struct TraceStats {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  double duration_s = 0.0;
  double writes_per_second = 0.0;
  double reads_per_second = 0.0;
  /// Fraction of the LBA space written at least once (paper: 0.3662).
  double write_coverage = 0.0;
  /// Fraction of all writes that hit the top 10% most-written LBAs
  /// (hot/cold skew; ~1 would mean all writes are hot).
  double top_decile_write_share = 0.0;
  /// Fraction of writes whose LBA is exactly the previous write's LBA + 1
  /// (sequentiality / burstiness).
  double sequential_write_fraction = 0.0;
};

/// Computes statistics over a trace addressing `lba_count` logical pages.
[[nodiscard]] TraceStats analyze(const Trace& trace, Lba lba_count);

}  // namespace swl::trace

#endif  // SWL_TRACE_TRACE_STATS_HPP
