// Synthetic "mobile PC" workload — the substitution for the paper's trace.
//
// The paper's trace (Section 5.1): one month of daily activity (web surfing,
// email, movie download/playback, games, document editing) on a 20 GB NTFS
// disk; 36.62% of LBAs written at least once; 1.82 writes/s and 1.97 reads/s
// on average; hot data "often written in burst".
//
// The generator reproduces the four properties the SWL mechanism is
// sensitive to:
//   1. hot/cold skew    — a small hot pool takes most single-page updates
//                         (file-system metadata, application state);
//   2. LBA coverage     — a configurable fraction of the space is ever
//                         written, the rest stays cold forever;
//   3. burstiness       — sequential multi-page runs with millisecond
//                         spacing (downloads, file copies) dominate the
//                         written volume, making the average per-block live
//                         copy count small under FTL (the paper's Fig. 7(a)
//                         explanation);
//   4. aggregate rates  — mean write/read ops per second match the trace, so
//                         erase counts translate to years the same way.
#ifndef SWL_TRACE_SYNTHETIC_HPP
#define SWL_TRACE_SYNTHETIC_HPP

#include <cstdint>
#include <optional>
#include <string_view>

#include "core/permutation.hpp"
#include "core/rng.hpp"
#include "trace/trace.hpp"

namespace swl::trace {

struct SyntheticConfig {
  /// Size of the logical space the trace addresses.
  Lba lba_count = 0;
  /// Trace length in seconds (the paper's trace covers one month).
  double duration_s = 30.0 * 24 * 3600;
  /// Mean write / read operations per second (paper: 1.82 / 1.97).
  double writes_per_second = 1.82;
  double reads_per_second = 1.97;
  /// Fraction of the LBA space that is ever written (paper: 0.3662).
  double write_coverage = 0.3662;
  /// Fraction of the *written* space that is hot (frequently updated).
  double hot_fraction = 0.125;
  /// Fraction of write operations that are single-page hot updates; the rest
  /// arrive as sequential bursts over the warm region (plus one-shot cold
  /// fills early in the trace).
  double hot_write_ratio = 0.55;
  /// Zipf skew of the hot-update popularity distribution.
  double hot_zipf_skew = 0.9;
  /// Sequential burst length bounds (pages).
  std::uint32_t burst_min_pages = 16;
  std::uint32_t burst_max_pages = 256;
  /// Spacing between pages of one burst (milliseconds).
  double burst_page_gap_ms = 2.0;
  /// Fraction of non-hot writes that are one-shot cold fills.
  double cold_fill_ratio = 0.08;
  /// File-system scattering: the generator's contiguous hot/warm/cold
  /// regions are mapped through a seeded random permutation of
  /// `scatter_chunk_pages`-sized chunks, so data of every temperature is
  /// spread across the whole LBA space (as a real file system lays out
  /// files) while runs inside a chunk stay sequential. 0 disables
  /// scattering (regions stay contiguous). 16 pages = 32 KiB fragments.
  std::uint32_t scatter_chunk_pages = 16;
  std::uint64_t seed = 0x7aceULL;
};

/// Named workload families. `desktop` is the paper-calibrated mobile-PC mix
/// (the default SyntheticConfig); the others stress different corners of the
/// wear-leveling design space.
enum class WorkloadPreset {
  /// The paper's trace statistics: 1.82 w/s, 1.97 r/s, 36.62% coverage,
  /// strong hot/cold skew, bursty sequential runs.
  desktop,
  /// Server-ish: order-of-magnitude higher rates, flatter skew, small
  /// transfers, wide coverage.
  server,
  /// Media archive: almost everything is large sequential one-shot writes.
  sequential_fill,
  /// Uniform random updates over nearly the whole space (the workload where
  /// static wear leveling has the least to add).
  uniform_random,
};

[[nodiscard]] std::string_view to_string(WorkloadPreset p) noexcept;

/// A config for `preset` over `lba_count` logical pages.
[[nodiscard]] SyntheticConfig preset_config(WorkloadPreset preset, Lba lba_count);

/// Generates the whole trace in memory. Record count ≈ duration *
/// (writes_per_second + reads_per_second); scale duration accordingly.
[[nodiscard]] Trace generate_synthetic_trace(const SyntheticConfig& config);

/// Streaming variant for long traces: produces the identical record stream
/// without materializing it.
class SyntheticTraceSource final : public TraceSource {
 public:
  explicit SyntheticTraceSource(const SyntheticConfig& config);

  std::optional<TraceRecord> next() override;
  std::size_t next_batch(TraceRecord* out, std::size_t n) override;

  [[nodiscard]] const SyntheticConfig& config() const noexcept { return config_; }

 private:
  /// Emits the next record into `out`; false at end of trace. Shared by
  /// next() and next_batch() so both yield the identical stream.
  [[nodiscard]] bool produce(TraceRecord& out);
  void start_write_burst();
  [[nodiscard]] Lba pick_hot_lba();
  [[nodiscard]] Lba pick_read_lba();
  /// Maps a region-space address to its scattered LBA (identity when
  /// scattering is disabled).
  [[nodiscard]] Lba scatter(Lba region_lba) const;

  SyntheticConfig config_;
  Rng rng_;
  ZipfSampler hot_sampler_;
  double now_s_ = 0.0;
  double next_write_s_ = 0.0;
  double next_read_s_ = 0.0;
  // Region boundaries (see .cpp): [0, hot_end_) hot, [hot_end_, warm_end_)
  // warm/sequential, [warm_end_, cold_end_) cold fills, rest never written.
  Lba hot_end_ = 0;
  Lba warm_end_ = 0;
  Lba cold_end_ = 0;
  // In-flight sequential burst.
  Lba burst_next_ = 0;
  std::uint32_t burst_remaining_ = 0;
  // Cold-fill cursor (one-shot writes walk the cold region once).
  Lba cold_cursor_ = 0;
  // Mean gap between write events (a hot update or a whole burst).
  double write_event_gap_mean_s_ = 1.0;
  // hot_event_probability(config_), computed once (it is pure in config_).
  double hot_event_p_ = 0.0;
  // Chunk permutation implementing the file-system scattering.
  std::optional<RandomPermutation> chunk_perm_;
};

}  // namespace swl::trace

#endif  // SWL_TRACE_SYNTHETIC_HPP
