#include "trace/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"

namespace swl::trace {

namespace {

double mean_burst_pages(const SyntheticConfig& c) {
  return (static_cast<double>(c.burst_min_pages) + static_cast<double>(c.burst_max_pages)) / 2.0;
}

/// Probability that a write *event* is a hot single-page update, such that
/// the fraction of write *operations* that are hot equals hot_write_ratio.
double hot_event_probability(const SyntheticConfig& c) {
  const double p = c.hot_write_ratio;
  const double l = mean_burst_pages(c);
  return p * l / ((1.0 - p) + p * l);
}

/// Fraction of the written space that is cold one-shot data; the remainder
/// (after the hot pool) is the warm region rewritten by sequential bursts.
constexpr double kColdSpaceFraction = 0.5;

}  // namespace

SyntheticTraceSource::SyntheticTraceSource(const SyntheticConfig& config)
    : config_(config),
      rng_(config.seed),
      hot_sampler_(
          std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>(config.write_coverage * config.hot_fraction *
                                            static_cast<double>(config.lba_count))),
          config.hot_zipf_skew) {
  SWL_REQUIRE(config_.lba_count >= 16, "trace needs a non-trivial LBA space");
  SWL_REQUIRE(config_.duration_s > 0.0, "trace duration must be positive");
  SWL_REQUIRE(config_.writes_per_second > 0.0 && config_.reads_per_second >= 0.0,
              "invalid op rates");
  SWL_REQUIRE(config_.write_coverage > 0.0 && config_.write_coverage <= 1.0,
              "write_coverage out of range");
  SWL_REQUIRE(config_.hot_fraction > 0.0 && config_.hot_fraction < 1.0,
              "hot_fraction out of range");
  SWL_REQUIRE(config_.hot_write_ratio > 0.0 && config_.hot_write_ratio < 1.0,
              "hot_write_ratio out of range");
  SWL_REQUIRE(config_.burst_min_pages >= 1 && config_.burst_min_pages <= config_.burst_max_pages,
              "invalid burst length bounds");

  const auto written = static_cast<Lba>(config_.write_coverage *
                                        static_cast<double>(config_.lba_count));
  hot_end_ = static_cast<Lba>(hot_sampler_.size());
  const auto cold_size = static_cast<Lba>(kColdSpaceFraction * static_cast<double>(written));
  warm_end_ = std::max<Lba>(hot_end_ + 1, written > cold_size ? written - cold_size : hot_end_ + 1);
  cold_end_ = std::max<Lba>(warm_end_ + 1, written);
  cold_end_ = std::min<Lba>(cold_end_, config_.lba_count);
  warm_end_ = std::min<Lba>(warm_end_, cold_end_ - 1);
  cold_cursor_ = warm_end_;
  SWL_ASSERT(hot_end_ < warm_end_ && warm_end_ < cold_end_ && cold_end_ <= config_.lba_count,
             "degenerate region layout — LBA space too small for the coverage settings");

  if (config_.scatter_chunk_pages > 0) {
    const Lba chunks = config_.lba_count / config_.scatter_chunk_pages;
    if (chunks >= 2) chunk_perm_.emplace(chunks, config_.seed ^ 0x5ca77e2ULL);
  }

  hot_event_p_ = hot_event_probability(config_);
  const double hot_event_p = hot_event_p_;
  const double mean_ops_per_event =
      hot_event_p + (1.0 - hot_event_p) * mean_burst_pages(config_);
  write_event_gap_mean_s_ = mean_ops_per_event / config_.writes_per_second;
  next_write_s_ = rng_.exponential(write_event_gap_mean_s_);
  next_read_s_ = config_.reads_per_second > 0.0
                     ? rng_.exponential(1.0 / config_.reads_per_second)
                     : config_.duration_s + 1.0;
}

Lba SyntheticTraceSource::scatter(Lba region_lba) const {
  if (!chunk_perm_.has_value()) return region_lba;
  const Lba chunk = region_lba / config_.scatter_chunk_pages;
  const Lba offset = region_lba % config_.scatter_chunk_pages;
  if (chunk >= chunk_perm_->size()) return region_lba;  // identity tail
  return static_cast<Lba>(chunk_perm_->forward(chunk)) * config_.scatter_chunk_pages + offset;
}

Lba SyntheticTraceSource::pick_hot_lba() {
  return static_cast<Lba>(hot_sampler_.sample(rng_));
}

Lba SyntheticTraceSource::pick_read_lba() {
  // Reads favor hot data but also touch everything ever written.
  if (rng_.chance(0.5)) return pick_hot_lba();
  return static_cast<Lba>(rng_.below(cold_end_));
}

void SyntheticTraceSource::start_write_burst() {
  const std::uint32_t len = static_cast<std::uint32_t>(
      rng_.range(config_.burst_min_pages, config_.burst_max_pages));
  if (cold_cursor_ < cold_end_ && rng_.chance(config_.cold_fill_ratio)) {
    // One-shot cold fill: walk the cold region exactly once.
    burst_next_ = cold_cursor_;
    burst_remaining_ = std::min<std::uint32_t>(len, cold_end_ - cold_cursor_);
    cold_cursor_ += burst_remaining_;
  } else {
    // Sequential run somewhere in the warm region (download, file copy).
    const Lba span = warm_end_ - hot_end_;
    const std::uint32_t run = std::min<std::uint32_t>(len, span);
    burst_next_ = hot_end_ + static_cast<Lba>(rng_.below(span - run + 1));
    burst_remaining_ = run;
  }
}

bool SyntheticTraceSource::produce(TraceRecord& out) {
  while (true) {
    // Candidate event times: the in-flight burst page, the next write event
    // (only when no burst is active) and the next read.
    const double write_t = next_write_s_;
    const double read_t = next_read_s_;
    const bool burst_active = burst_remaining_ > 0;

    if (write_t <= read_t) {
      if (write_t > config_.duration_s) return false;
      now_s_ = write_t;
      if (burst_active) {
        out = TraceRecord{seconds_to_us(now_s_), scatter(burst_next_++), Op::write};
        if (--burst_remaining_ == 0) {
          next_write_s_ = now_s_ + rng_.exponential(write_event_gap_mean_s_);
        } else {
          next_write_s_ = now_s_ + config_.burst_page_gap_ms / 1000.0;
        }
        return true;
      }
      if (rng_.chance(hot_event_p_)) {
        out = TraceRecord{seconds_to_us(now_s_), scatter(pick_hot_lba()), Op::write};
        next_write_s_ = now_s_ + rng_.exponential(write_event_gap_mean_s_);
        return true;
      }
      start_write_burst();
      continue;  // the burst's first page is emitted on the next iteration
    }

    if (read_t > config_.duration_s) return false;
    now_s_ = read_t;
    out = TraceRecord{seconds_to_us(now_s_), scatter(pick_read_lba()), Op::read};
    next_read_s_ = now_s_ + rng_.exponential(1.0 / config_.reads_per_second);
    return true;
  }
}

std::optional<TraceRecord> SyntheticTraceSource::next() {
  TraceRecord rec;
  if (!produce(rec)) return std::nullopt;
  return rec;
}

std::size_t SyntheticTraceSource::next_batch(TraceRecord* out, std::size_t n) {
  std::size_t filled = 0;
  while (filled < n && produce(out[filled])) ++filled;
  return filled;
}

std::string_view to_string(WorkloadPreset p) noexcept {
  switch (p) {
    case WorkloadPreset::desktop:
      return "desktop";
    case WorkloadPreset::server:
      return "server";
    case WorkloadPreset::sequential_fill:
      return "sequential_fill";
    case WorkloadPreset::uniform_random:
      return "uniform_random";
  }
  return "unknown";
}

SyntheticConfig preset_config(WorkloadPreset preset, Lba lba_count) {
  SyntheticConfig c;
  c.lba_count = lba_count;
  switch (preset) {
    case WorkloadPreset::desktop:
      break;  // the paper-calibrated defaults
    case WorkloadPreset::server:
      c.writes_per_second = 40.0;
      c.reads_per_second = 90.0;
      c.write_coverage = 0.7;
      c.hot_fraction = 0.3;
      c.hot_write_ratio = 0.5;
      c.hot_zipf_skew = 0.6;
      c.burst_min_pages = 2;
      c.burst_max_pages = 32;
      c.cold_fill_ratio = 0.03;
      break;
    case WorkloadPreset::sequential_fill:
      c.writes_per_second = 20.0;
      c.reads_per_second = 5.0;
      c.write_coverage = 0.95;
      c.hot_fraction = 0.01;
      c.hot_write_ratio = 0.05;
      c.burst_min_pages = 128;
      c.burst_max_pages = 512;
      c.cold_fill_ratio = 0.5;
      break;
    case WorkloadPreset::uniform_random:
      c.writes_per_second = 10.0;
      c.reads_per_second = 10.0;
      c.write_coverage = 0.99;
      c.hot_fraction = 0.98;
      c.hot_write_ratio = 0.98;
      c.hot_zipf_skew = 0.0;  // uniform over the "hot" pool = almost everything
      c.burst_min_pages = 1;
      c.burst_max_pages = 4;
      c.cold_fill_ratio = 0.0;
      break;
  }
  return c;
}

Trace generate_synthetic_trace(const SyntheticConfig& config) {
  SyntheticTraceSource source(config);
  Trace trace;
  const double expected_ops =
      config.duration_s * (config.writes_per_second + config.reads_per_second);
  trace.reserve(static_cast<std::size_t>(expected_ops * 1.1));
  while (auto rec = source.next()) trace.push_back(*rec);
  return trace;
}

}  // namespace swl::trace
