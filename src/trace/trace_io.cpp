#include "trace/trace_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "core/contracts.hpp"

namespace swl::trace {

namespace {

constexpr std::array<char, 4> kMagic{'S', 'W', 'L', 'T'};
constexpr std::uint32_t kVersion = 1;

class Fnv1a {
 public:
  void update(const void* data, std::size_t len) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

template <typename T>
void write_le(std::ostream& os, Fnv1a& sum, T value) {
  std::array<char, sizeof(T)> buf{};
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
  os.write(buf.data(), buf.size());
  sum.update(buf.data(), buf.size());
}

template <typename T>
bool read_le(std::istream& is, Fnv1a& sum, T* value) {
  std::array<char, sizeof(T)> buf{};
  if (!is.read(buf.data(), buf.size())) return false;
  sum.update(buf.data(), buf.size());
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i])) << (8 * i);
  }
  *value = static_cast<T>(v);
  return true;
}

}  // namespace

void write_binary(std::ostream& os, const Trace& trace) {
  Fnv1a sum;
  os.write(kMagic.data(), kMagic.size());
  sum.update(kMagic.data(), kMagic.size());
  write_le(os, sum, kVersion);
  write_le(os, sum, static_cast<std::uint64_t>(trace.size()));
  for (const auto& rec : trace) {
    write_le(os, sum, rec.time_us);
    write_le(os, sum, rec.lba);
    write_le(os, sum, static_cast<std::uint8_t>(rec.op));
    write_le(os, sum, static_cast<std::uint8_t>(0));
    write_le(os, sum, static_cast<std::uint16_t>(0));
  }
  Fnv1a ignored;
  write_le(os, ignored, sum.value());
}

Status read_binary(std::istream& is, Trace* out) {
  SWL_REQUIRE(out != nullptr, "null output");
  Fnv1a sum;
  std::array<char, 4> magic{};
  if (!is.read(magic.data(), magic.size()) || magic != kMagic) return Status::corrupt_snapshot;
  sum.update(magic.data(), magic.size());
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  if (!read_le(is, sum, &version) || version != kVersion) return Status::corrupt_snapshot;
  if (!read_le(is, sum, &count)) return Status::corrupt_snapshot;
  Trace trace;
  trace.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceRecord rec;
    std::uint8_t op = 0;
    std::uint8_t pad8 = 0;
    std::uint16_t pad16 = 0;
    if (!read_le(is, sum, &rec.time_us) || !read_le(is, sum, &rec.lba) ||
        !read_le(is, sum, &op) || !read_le(is, sum, &pad8) || !read_le(is, sum, &pad16)) {
      return Status::corrupt_snapshot;
    }
    if (op > 1) return Status::corrupt_snapshot;
    rec.op = static_cast<Op>(op);
    trace.push_back(rec);
  }
  const std::uint64_t computed = sum.value();
  Fnv1a ignored;
  std::uint64_t stored = 0;
  if (!read_le(is, ignored, &stored) || stored != computed) return Status::corrupt_snapshot;
  *out = std::move(trace);
  return Status::ok;
}

void save_binary(const std::string& path, const Trace& trace) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  SWL_REQUIRE(os.good(), "cannot open trace file for writing");
  write_binary(os, trace);
  SWL_REQUIRE(os.good(), "trace write failed");
}

Status load_binary(const std::string& path, Trace* out) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return Status::corrupt_snapshot;
  return read_binary(is, out);
}

void write_csv(std::ostream& os, const Trace& trace) {
  os << "time_us,lba,op\n";
  for (const auto& rec : trace) {
    os << rec.time_us << ',' << rec.lba << ',' << (rec.op == Op::write ? 'W' : 'R') << '\n';
  }
}

Status read_csv(std::istream& is, Trace* out) {
  SWL_REQUIRE(out != nullptr, "null output");
  Trace trace;
  std::string line;
  if (!std::getline(is, line)) return Status::corrupt_snapshot;  // header
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    TraceRecord rec;
    char comma1 = 0;
    char comma2 = 0;
    char op = 0;
    if (!(ls >> rec.time_us >> comma1 >> rec.lba >> comma2 >> op) || comma1 != ',' ||
        comma2 != ',' || (op != 'R' && op != 'W')) {
      return Status::corrupt_snapshot;
    }
    rec.op = op == 'W' ? Op::write : Op::read;
    trace.push_back(rec);
  }
  *out = std::move(trace);
  return Status::ok;
}

}  // namespace swl::trace
