#include "trace/trace_io.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "core/contracts.hpp"

namespace swl::trace {

namespace {

constexpr std::array<char, 4> kMagic{'S', 'W', 'L', 'T'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kChunkBytes = 64 * 1024;
constexpr std::size_t kRecordBytes = 16;

class Fnv1a {
 public:
  void update(const void* data, std::size_t len) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

void store_le32(unsigned char* p, std::uint32_t v) noexcept {
  for (std::size_t i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
}

void store_le64(unsigned char* p, std::uint64_t v) noexcept {
  for (std::size_t i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
}

std::uint32_t load_le32(const unsigned char* p) noexcept {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t load_le64(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void encode_record(unsigned char* p, const TraceRecord& rec) noexcept {
  store_le64(p, rec.time_us);
  store_le32(p + 8, rec.lba);
  p[12] = static_cast<unsigned char>(rec.op);
  p[13] = 0;
  p[14] = 0;
  p[15] = 0;
}

/// Accumulates bytes in a 64 KiB chunk and writes/checksums whole chunks.
/// The bytes hit the stream in the same order per-field IO produced, so the
/// file format (checksum included) is unchanged.
class ChunkWriter {
 public:
  explicit ChunkWriter(std::ostream& os) : os_(os), buf_(kChunkBytes) {}

  /// Returns space for n contiguous bytes (n <= kChunkBytes), flushing first
  /// if the chunk cannot hold them; call commit(n) after filling it.
  [[nodiscard]] unsigned char* reserve(std::size_t n) {
    if (kChunkBytes - fill_ < n) flush();
    return buf_.data() + fill_;
  }
  void commit(std::size_t n) noexcept { fill_ += n; }

  void flush() {
    if (fill_ == 0) return;
    sum_.update(buf_.data(), fill_);
    os_.write(reinterpret_cast<const char*>(buf_.data()), static_cast<std::streamsize>(fill_));
    fill_ = 0;
  }

  /// Checksum of everything flushed so far.
  [[nodiscard]] std::uint64_t checksum() const noexcept { return sum_.value(); }

 private:
  std::ostream& os_;
  std::vector<unsigned char> buf_;
  std::size_t fill_ = 0;
  Fnv1a sum_;
};

/// Refills a 64 KiB chunk from the stream and hands out contiguous views.
/// Checksumming is the caller's job (the trailer must stay out of the sum).
class ChunkReader {
 public:
  explicit ChunkReader(std::istream& is) : is_(is), buf_(kChunkBytes) {}

  /// Ensures at least n contiguous unread bytes (n <= kChunkBytes) are
  /// buffered; returns a view of them or nullptr at end of stream.
  [[nodiscard]] const unsigned char* fetch(std::size_t n) {
    if (fill_ - pos_ < n) refill();
    if (fill_ - pos_ < n) return nullptr;
    return buf_.data() + pos_;
  }
  void consume(std::size_t n) noexcept { pos_ += n; }
  [[nodiscard]] std::size_t buffered() const noexcept { return fill_ - pos_; }

 private:
  void refill() {
    if (pos_ > 0) {
      std::memmove(buf_.data(), buf_.data() + pos_, fill_ - pos_);
      fill_ -= pos_;
      pos_ = 0;
    }
    is_.read(reinterpret_cast<char*>(buf_.data()) + fill_,
             static_cast<std::streamsize>(kChunkBytes - fill_));
    fill_ += static_cast<std::size_t>(is_.gcount());
  }

  std::istream& is_;
  std::vector<unsigned char> buf_;
  std::size_t pos_ = 0;
  std::size_t fill_ = 0;
};

/// Reads and validates the 16-byte header; returns false on any mismatch.
bool read_header(ChunkReader& in, Fnv1a& sum, std::uint64_t* count) {
  const unsigned char* p = in.fetch(16);
  if (p == nullptr) return false;
  if (std::memcmp(p, kMagic.data(), kMagic.size()) != 0) return false;
  if (load_le32(p + 4) != kVersion) return false;
  *count = load_le64(p + 8);
  sum.update(p, 16);
  in.consume(16);
  return true;
}

}  // namespace

void write_binary(std::ostream& os, const Trace& trace) {
  ChunkWriter out(os);
  unsigned char* p = out.reserve(16);
  std::memcpy(p, kMagic.data(), kMagic.size());
  store_le32(p + 4, kVersion);
  store_le64(p + 8, static_cast<std::uint64_t>(trace.size()));
  out.commit(16);
  for (const auto& rec : trace) {
    p = out.reserve(kRecordBytes);
    encode_record(p, rec);
    out.commit(kRecordBytes);
  }
  out.flush();
  // Trailer: the checksum itself is not part of the checksummed stream.
  std::array<unsigned char, 8> tail{};
  store_le64(tail.data(), out.checksum());
  os.write(reinterpret_cast<const char*>(tail.data()), tail.size());
}

Status read_binary(std::istream& is, Trace* out) {
  SWL_REQUIRE(out != nullptr, "null output");
  ChunkReader in(is);
  Fnv1a sum;
  std::uint64_t count = 0;
  if (!read_header(in, sum, &count)) return Status::corrupt_snapshot;
  Trace trace;
  trace.reserve(static_cast<std::size_t>(count));
  std::uint64_t remaining = count;
  while (remaining > 0) {
    const unsigned char* p = in.fetch(kRecordBytes);
    if (p == nullptr) return Status::corrupt_snapshot;
    // Decode every whole buffered record against this chunk in one pass.
    const std::uint64_t take =
        std::min<std::uint64_t>(remaining, in.buffered() / kRecordBytes);
    sum.update(p, static_cast<std::size_t>(take) * kRecordBytes);
    for (std::uint64_t i = 0; i < take; ++i, p += kRecordBytes) {
      if (p[12] > 1) return Status::corrupt_snapshot;
      trace.push_back(TraceRecord{load_le64(p), load_le32(p + 8), static_cast<Op>(p[12])});
    }
    in.consume(static_cast<std::size_t>(take) * kRecordBytes);
    remaining -= take;
  }
  const unsigned char* tail = in.fetch(8);
  if (tail == nullptr || load_le64(tail) != sum.value()) return Status::corrupt_snapshot;
  *out = std::move(trace);
  return Status::ok;
}

void save_binary(const std::string& path, const Trace& trace) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  SWL_REQUIRE(os.good(), "cannot open trace file for writing");
  write_binary(os, trace);
  SWL_REQUIRE(os.good(), "trace write failed");
}

Status load_binary(const std::string& path, Trace* out) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return Status::corrupt_snapshot;
  return read_binary(is, out);
}

struct BinaryTraceSource::Impl {
  explicit Impl(const std::string& path) : is(path, std::ios::binary), in(is) {
    if (!is.good() || !read_header(in, sum, &count)) {
      status = Status::corrupt_snapshot;
      return;
    }
    remaining = count;
  }

  /// Decodes up to n records; stops early (marking the stream corrupt) on a
  /// truncated file or bad op byte, and verifies the trailer after the last
  /// record so a drained source proves the file intact.
  std::size_t drain(TraceRecord* out, std::size_t n) {
    if (status != Status::ok) return 0;
    std::size_t filled = 0;
    while (filled < n && remaining > 0) {
      const unsigned char* p = in.fetch(kRecordBytes);
      if (p == nullptr) {
        status = Status::corrupt_snapshot;
        remaining = 0;
        return filled;
      }
      const std::uint64_t take = std::min<std::uint64_t>(
          {remaining, static_cast<std::uint64_t>(n - filled),
           static_cast<std::uint64_t>(in.buffered() / kRecordBytes)});
      sum.update(p, static_cast<std::size_t>(take) * kRecordBytes);
      for (std::uint64_t i = 0; i < take; ++i, p += kRecordBytes) {
        if (p[12] > 1) {
          status = Status::corrupt_snapshot;
          remaining = 0;
          return filled;
        }
        out[filled++] = TraceRecord{load_le64(p), load_le32(p + 8), static_cast<Op>(p[12])};
      }
      in.consume(static_cast<std::size_t>(take) * kRecordBytes);
      remaining -= take;
    }
    if (remaining == 0 && !checked_trailer) {
      checked_trailer = true;
      const unsigned char* tail = in.fetch(8);
      if (tail == nullptr || load_le64(tail) != sum.value()) status = Status::corrupt_snapshot;
    }
    return filled;
  }

  std::ifstream is;
  ChunkReader in;
  Fnv1a sum;
  Status status = Status::ok;
  std::uint64_t count = 0;
  std::uint64_t remaining = 0;
  bool checked_trailer = false;
};

BinaryTraceSource::BinaryTraceSource(const std::string& path)
    : impl_(std::make_unique<Impl>(path)) {}

BinaryTraceSource::~BinaryTraceSource() = default;

std::optional<TraceRecord> BinaryTraceSource::next() {
  TraceRecord rec;
  if (impl_->drain(&rec, 1) == 0) return std::nullopt;
  return rec;
}

std::size_t BinaryTraceSource::next_batch(TraceRecord* out, std::size_t n) {
  return impl_->drain(out, n);
}

Status BinaryTraceSource::status() const noexcept { return impl_->status; }

std::uint64_t BinaryTraceSource::record_count() const noexcept { return impl_->count; }

void write_csv(std::ostream& os, const Trace& trace) {
  os << "time_us,lba,op\n";
  for (const auto& rec : trace) {
    os << rec.time_us << ',' << rec.lba << ',' << (rec.op == Op::write ? 'W' : 'R') << '\n';
  }
}

Status read_csv(std::istream& is, Trace* out) {
  SWL_REQUIRE(out != nullptr, "null output");
  Trace trace;
  std::string line;
  if (!std::getline(is, line)) return Status::corrupt_snapshot;  // header
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    TraceRecord rec;
    char comma1 = 0;
    char comma2 = 0;
    char op = 0;
    if (!(ls >> rec.time_us >> comma1 >> rec.lba >> comma2 >> op) || comma1 != ',' ||
        comma2 != ',' || (op != 'R' && op != 'W')) {
      return Status::corrupt_snapshot;
    }
    rec.op = op == 'W' ? Op::write : Op::read;
    trace.push_back(rec);
  }
  *out = std::move(trace);
  return Status::ok;
}

}  // namespace swl::trace
