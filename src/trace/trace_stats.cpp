#include "trace/trace_stats.hpp"

#include <algorithm>
#include <vector>

#include "core/clock.hpp"
#include "core/contracts.hpp"

namespace swl::trace {

TraceStats analyze(const Trace& trace, Lba lba_count) {
  SWL_REQUIRE(lba_count > 0, "lba_count must be positive");
  TraceStats stats;
  if (trace.empty()) return stats;

  std::vector<std::uint32_t> write_counts(lba_count, 0);
  Lba prev_write_lba = kInvalidLba;
  for (const auto& rec : trace) {
    SWL_REQUIRE(rec.lba < lba_count, "trace record LBA out of range");
    if (rec.op == Op::write) {
      ++stats.writes;
      ++write_counts[rec.lba];
      if (prev_write_lba != kInvalidLba && rec.lba == prev_write_lba + 1) {
        // counted below via sequential_writes
        stats.sequential_write_fraction += 1.0;
      }
      prev_write_lba = rec.lba;
    } else {
      ++stats.reads;
    }
  }
  stats.duration_s =
      static_cast<double>(trace.back().time_us) / static_cast<double>(kUsPerSecond);
  if (stats.duration_s > 0.0) {
    stats.writes_per_second = static_cast<double>(stats.writes) / stats.duration_s;
    stats.reads_per_second = static_cast<double>(stats.reads) / stats.duration_s;
  }

  std::uint64_t written_lbas = 0;
  std::vector<std::uint32_t> nonzero;
  nonzero.reserve(lba_count / 4);
  for (const auto c : write_counts) {
    if (c > 0) {
      ++written_lbas;
      nonzero.push_back(c);
    }
  }
  stats.write_coverage = static_cast<double>(written_lbas) / static_cast<double>(lba_count);

  if (stats.writes > 0) {
    stats.sequential_write_fraction /= static_cast<double>(stats.writes);
    // Share of writes landing on the top 10% most-written LBAs (of the
    // written set), a scale-free measure of hot/cold skew.
    std::sort(nonzero.begin(), nonzero.end(), std::greater<>());
    const std::size_t decile = std::max<std::size_t>(1, nonzero.size() / 10);
    std::uint64_t top = 0;
    for (std::size_t i = 0; i < decile; ++i) top += nonzero[i];
    stats.top_decile_write_share = static_cast<double>(top) / static_cast<double>(stats.writes);
  }
  return stats;
}

}  // namespace swl::trace
