// Trace (de)serialization: a compact binary format plus CSV export, so
// externally collected traces can be replayed through the simulator and
// generated traces can be archived and inspected.
#ifndef SWL_TRACE_TRACE_IO_HPP
#define SWL_TRACE_TRACE_IO_HPP

#include <iosfwd>
#include <string>

#include "core/status.hpp"
#include "trace/trace.hpp"

namespace swl::trace {

/// Binary format: 16-byte header (magic "SWLT", version, record count) then
/// 16 bytes per record (time_us : u64, lba : u32, op : u8, 3 pad bytes),
/// all little-endian, followed by an FNV-1a checksum of everything before it.
void write_binary(std::ostream& os, const Trace& trace);
[[nodiscard]] Status read_binary(std::istream& is, Trace* out);

void save_binary(const std::string& path, const Trace& trace);
[[nodiscard]] Status load_binary(const std::string& path, Trace* out);

/// CSV with a header row: time_us,lba,op  (op is "R" or "W").
void write_csv(std::ostream& os, const Trace& trace);
[[nodiscard]] Status read_csv(std::istream& is, Trace* out);

}  // namespace swl::trace

#endif  // SWL_TRACE_TRACE_IO_HPP
