// Trace (de)serialization: a compact binary format plus CSV export, so
// externally collected traces can be replayed through the simulator and
// generated traces can be archived and inspected.
//
// All binary IO is chunk-buffered (64 KiB) — records are encoded/decoded
// against an in-memory buffer and hit the stream once per chunk instead of
// once per field, which keeps file replay on the same order as in-memory
// replay. The byte format is unchanged.
#ifndef SWL_TRACE_TRACE_IO_HPP
#define SWL_TRACE_TRACE_IO_HPP

#include <iosfwd>
#include <memory>
#include <string>

#include "core/status.hpp"
#include "trace/trace.hpp"

namespace swl::trace {

/// Binary format: 16-byte header (magic "SWLT", version, record count) then
/// 16 bytes per record (time_us : u64, lba : u32, op : u8, 3 pad bytes),
/// all little-endian, followed by an FNV-1a checksum of everything before it.
void write_binary(std::ostream& os, const Trace& trace);
[[nodiscard]] Status read_binary(std::istream& is, Trace* out);

void save_binary(const std::string& path, const Trace& trace);
[[nodiscard]] Status load_binary(const std::string& path, Trace* out);

/// Streams records out of a binary trace file without materializing the
/// whole trace, using the same 64 KiB chunked decode as read_binary; yields
/// exactly the record sequence load_binary would produce.
///
/// Errors surface through status(): the stream simply ends early and
/// status() reports Status::corrupt_snapshot (an unreadable file, a bad
/// header, a malformed record, or a checksum mismatch — the checksum is
/// verified once the final record has been consumed). A fully drained,
/// intact file leaves status() == Status::ok.
class BinaryTraceSource final : public TraceSource {
 public:
  explicit BinaryTraceSource(const std::string& path);
  ~BinaryTraceSource() override;

  std::optional<TraceRecord> next() override;
  std::size_t next_batch(TraceRecord* out, std::size_t n) override;

  /// Health of the stream so far (ok until an error is detected).
  [[nodiscard]] Status status() const noexcept;
  /// Record count from the header (0 if the header was unreadable).
  [[nodiscard]] std::uint64_t record_count() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// CSV with a header row: time_us,lba,op  (op is "R" or "W").
void write_csv(std::ostream& os, const Trace& trace);
[[nodiscard]] Status read_csv(std::istream& is, Trace* out);

}  // namespace swl::trace

#endif  // SWL_TRACE_TRACE_IO_HPP
