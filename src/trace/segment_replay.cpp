#include "trace/segment_replay.hpp"

#include <algorithm>

#include "core/contracts.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace swl::trace {

namespace {

// -- segment rebase copy -----------------------------------------------------
//
// next_batch spends its time copying base-trace slices while adding a fixed
// delta to every timestamp. rebase_copy() is that loop; the AVX2 path moves
// two 16-byte records per 32-byte vector, adding the delta to the two
// timestamp lanes and zero to the lba/op lanes. Unsigned 64-bit lane adds
// wrap exactly like the scalar `+=`, so both paths are bit-identical; the
// dispatch is resolved once per process via __builtin_cpu_supports.

using RebaseCopyFn = void (*)(TraceRecord*, const TraceRecord*, std::size_t, SimTime);

void rebase_copy_scalar(TraceRecord* out, const TraceRecord* src, std::size_t n, SimTime delta) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = src[i];
    out[i].time_us += delta;
  }
}

#if defined(__x86_64__)
__attribute__((target("avx2"))) void rebase_copy_avx2(TraceRecord* out, const TraceRecord* src,
                                                      std::size_t n, SimTime delta) {
  // Two records per vector: lanes 0/2 are the records' time_us fields, lanes
  // 1/3 carry lba+op (and padding) and get zero added.
  static_assert(sizeof(TraceRecord) == 16, "rebase_copy_avx2 assumes 16-byte records");
  const __m256i add =
      _mm256_set_epi64x(0, static_cast<long long>(delta), 0, static_cast<long long>(delta));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    v = _mm256_add_epi64(v, add);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
  for (; i < n; ++i) {
    out[i] = src[i];
    out[i].time_us += delta;
  }
}

RebaseCopyFn resolve_rebase_copy() {
  return __builtin_cpu_supports("avx2") ? &rebase_copy_avx2 : &rebase_copy_scalar;
}
#else
RebaseCopyFn resolve_rebase_copy() { return &rebase_copy_scalar; }
#endif

void rebase_copy(TraceRecord* out, const TraceRecord* src, std::size_t n, SimTime delta) {
  static const RebaseCopyFn fn = resolve_rebase_copy();
  fn(out, src, n, delta);
}

}  // namespace

SegmentReplaySource::SegmentReplaySource(const Trace& base, double segment_s, std::uint64_t seed)
    : base_(base), segment_us_(seconds_to_us(segment_s)), rng_(seed) {
  SWL_REQUIRE(!base_.empty(), "segment replay needs a non-empty base trace");
  SWL_REQUIRE(segment_us_ > 0, "segment length must be positive");
  SWL_REQUIRE(std::is_sorted(base_.begin(), base_.end(),
                             [](const TraceRecord& a, const TraceRecord& b) {
                               return a.time_us < b.time_us;
                             }),
              "base trace must be sorted by time");
  base_duration_us_ = base_.back().time_us + 1;
  // Size the bucket index to at most ~4K buckets (32 KiB): one linear pass
  // here replaces two full binary searches per segment forever after.
  constexpr std::uint64_t kMaxBuckets = 4096;
  while ((base_duration_us_ >> bucket_shift_) + 1 > kMaxBuckets) ++bucket_shift_;
  const auto bucket_count = static_cast<std::size_t>((base_duration_us_ >> bucket_shift_) + 1);
  bucket_.assign(bucket_count + 1, base_.size());
  std::size_t idx = 0;
  for (std::size_t b = 0; b < bucket_count; ++b) {
    const SimTime t = static_cast<SimTime>(b) << bucket_shift_;
    while (idx < base_.size() && base_[idx].time_us < t) ++idx;
    bucket_[b] = idx;
  }
  pick_segment();
}

std::size_t SegmentReplaySource::first_at_or_after(SimTime t) const {
  if (t >= base_duration_us_) return base_.size();
  const auto b = static_cast<std::size_t>(t >> bucket_shift_);
  // Records before bucket_[b] have time < (b << shift) <= t; records from
  // bucket_[b + 1] on have time >= ((b + 1) << shift) > t. So the global
  // lower_bound answer lies in [bucket_[b], bucket_[b + 1]] — when the
  // search comes back empty it is exactly bucket_[b + 1].
  const auto lo = base_.begin() + static_cast<std::ptrdiff_t>(bucket_[b]);
  const auto hi = base_.begin() + static_cast<std::ptrdiff_t>(bucket_[b + 1]);
  const auto it = std::lower_bound(
      lo, hi, t, [](const TraceRecord& r, SimTime tt) { return r.time_us < tt; });
  return static_cast<std::size_t>(it - base_.begin());
}

void SegmentReplaySource::pick_segment() {
  const SimTime span =
      base_duration_us_ > segment_us_ ? base_duration_us_ - segment_us_ + 1 : 1;
  segment_start_us_ = rng_.below(span);
  pos_ = first_at_or_after(segment_start_us_);
  segment_end_ = first_at_or_after(segment_start_us_ + segment_us_);
  ++segments_;
}

std::optional<TraceRecord> SegmentReplaySource::next() {
  // Skip (possibly several) windows that landed on quiet stretches; each
  // skipped window still advances the output timeline by its full length.
  while (pos_ >= segment_end_) {
    timeline_offset_us_ += segment_us_;
    pick_segment();
  }
  TraceRecord rec = base_[pos_++];
  rec.time_us = timeline_offset_us_ + (rec.time_us - segment_start_us_);
  return rec;
}

std::size_t SegmentReplaySource::next_batch(TraceRecord* out, std::size_t n) {
  std::size_t filled = 0;
  while (filled < n) {
    while (pos_ >= segment_end_) {
      timeline_offset_us_ += segment_us_;
      pick_segment();
    }
    const std::size_t take = std::min(n - filled, segment_end_ - pos_);
    // Same re-base next() applies: offset + (t - start) == t + (offset - start)
    // in unsigned arithmetic, so the hoisted delta is bit-identical.
    const SimTime delta = timeline_offset_us_ - segment_start_us_;
    rebase_copy(out + filled, base_.data() + pos_, take, delta);
    pos_ += take;
    filled += take;
  }
  return filled;
}

}  // namespace swl::trace
