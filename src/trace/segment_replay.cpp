#include "trace/segment_replay.hpp"

#include <algorithm>

#include "core/contracts.hpp"

namespace swl::trace {

SegmentReplaySource::SegmentReplaySource(const Trace& base, double segment_s, std::uint64_t seed)
    : base_(base), segment_us_(seconds_to_us(segment_s)), rng_(seed) {
  SWL_REQUIRE(!base_.empty(), "segment replay needs a non-empty base trace");
  SWL_REQUIRE(segment_us_ > 0, "segment length must be positive");
  SWL_REQUIRE(std::is_sorted(base_.begin(), base_.end(),
                             [](const TraceRecord& a, const TraceRecord& b) {
                               return a.time_us < b.time_us;
                             }),
              "base trace must be sorted by time");
  base_duration_us_ = base_.back().time_us + 1;
  pick_segment();
}

void SegmentReplaySource::pick_segment() {
  const SimTime span =
      base_duration_us_ > segment_us_ ? base_duration_us_ - segment_us_ + 1 : 1;
  segment_start_us_ = rng_.below(span);
  const auto lo = std::lower_bound(base_.begin(), base_.end(), segment_start_us_,
                                   [](const TraceRecord& r, SimTime t) { return r.time_us < t; });
  const auto hi = std::lower_bound(base_.begin(), base_.end(), segment_start_us_ + segment_us_,
                                   [](const TraceRecord& r, SimTime t) { return r.time_us < t; });
  pos_ = static_cast<std::size_t>(lo - base_.begin());
  segment_end_ = static_cast<std::size_t>(hi - base_.begin());
  ++segments_;
}

std::optional<TraceRecord> SegmentReplaySource::next() {
  // Skip (possibly several) windows that landed on quiet stretches; each
  // skipped window still advances the output timeline by its full length.
  while (pos_ >= segment_end_) {
    timeline_offset_us_ += segment_us_;
    pick_segment();
  }
  TraceRecord rec = base_[pos_++];
  rec.time_us = timeline_offset_us_ + (rec.time_us - segment_start_us_);
  return rec;
}

std::size_t SegmentReplaySource::next_batch(TraceRecord* out, std::size_t n) {
  std::size_t filled = 0;
  while (filled < n) {
    while (pos_ >= segment_end_) {
      timeline_offset_us_ += segment_us_;
      pick_segment();
    }
    const std::size_t take = std::min(n - filled, segment_end_ - pos_);
    // Same re-base next() applies: offset + (t - start) == t + (offset - start)
    // in unsigned arithmetic, so the hoisted delta is bit-identical.
    const SimTime delta = timeline_offset_us_ - segment_start_us_;
    const TraceRecord* src = base_.data() + pos_;
    for (std::size_t i = 0; i < take; ++i) {
      out[filled + i] = src[i];
      out[filled + i].time_us += delta;
    }
    pos_ += take;
    filled += take;
  }
  return filled;
}

}  // namespace swl::trace
