// Trace model: a timestamped stream of page-granularity reads and writes.
//
// The paper evaluates against a one-month trace of a mobile PC. That trace
// is not public, so src/trace provides (a) a calibrated synthetic equivalent
// (synthetic.hpp), (b) the infinite-trace derivation the paper describes —
// "randomly picking up any 10-minute trace segment" (segment_replay.hpp),
// and (c) a file format so external traces can be replayed (trace_io.hpp).
#ifndef SWL_TRACE_TRACE_HPP
#define SWL_TRACE_TRACE_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/clock.hpp"
#include "core/types.hpp"

namespace swl::trace {

enum class Op : std::uint8_t { read = 0, write = 1 };

struct TraceRecord {
  SimTime time_us = 0;  // timestamp within the trace
  Lba lba = 0;
  Op op = Op::read;

  friend constexpr bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

using Trace = std::vector<TraceRecord>;

/// Pull-based record stream; std::nullopt signals end of trace (infinite
/// sources never return it).
///
/// The batch API is the replay hot path: next_batch() fills a caller-owned
/// buffer and must yield the exact record sequence next() would, so the two
/// are interchangeable (sweep results are bit-identical either way — pinned
/// by trace_test's equivalence suite and sweep_determinism_test).
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  virtual std::optional<TraceRecord> next() = 0;

  /// Fills out[0..n) with up to n records and returns the count produced;
  /// 0 signals end of trace (infinite sources always return n). The default
  /// loops over next(); implementations override it with tight,
  /// allocation-free batch generation.
  virtual std::size_t next_batch(TraceRecord* out, std::size_t n) {
    std::size_t filled = 0;
    while (filled < n) {
      const std::optional<TraceRecord> rec = next();
      if (!rec.has_value()) break;
      out[filled++] = *rec;
    }
    return filled;
  }
};

/// Adapts an in-memory trace to the stream interface.
class VectorTraceSource final : public TraceSource {
 public:
  explicit VectorTraceSource(const Trace& records) : records_(records) {}

  std::optional<TraceRecord> next() override {
    if (pos_ >= records_.size()) return std::nullopt;
    return records_[pos_++];
  }

  std::size_t next_batch(TraceRecord* out, std::size_t n) override {
    const std::size_t take = std::min(n, records_.size() - pos_);
    std::copy_n(records_.data() + pos_, take, out);
    pos_ += take;
    return take;
  }

 private:
  const Trace& records_;
  std::size_t pos_ = 0;
};

}  // namespace swl::trace

#endif  // SWL_TRACE_TRACE_HPP
