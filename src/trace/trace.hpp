// Trace model: a timestamped stream of page-granularity reads and writes.
//
// The paper evaluates against a one-month trace of a mobile PC. That trace
// is not public, so src/trace provides (a) a calibrated synthetic equivalent
// (synthetic.hpp), (b) the infinite-trace derivation the paper describes —
// "randomly picking up any 10-minute trace segment" (segment_replay.hpp),
// and (c) a file format so external traces can be replayed (trace_io.hpp).
#ifndef SWL_TRACE_TRACE_HPP
#define SWL_TRACE_TRACE_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "core/clock.hpp"
#include "core/types.hpp"

namespace swl::trace {

enum class Op : std::uint8_t { read = 0, write = 1 };

struct TraceRecord {
  SimTime time_us = 0;  // timestamp within the trace
  Lba lba = 0;
  Op op = Op::read;

  friend constexpr bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

using Trace = std::vector<TraceRecord>;

/// Pull-based record stream; std::nullopt signals end of trace (infinite
/// sources never return it).
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  virtual std::optional<TraceRecord> next() = 0;
};

/// Adapts an in-memory trace to the stream interface.
class VectorTraceSource final : public TraceSource {
 public:
  explicit VectorTraceSource(const Trace& records) : records_(records) {}

  std::optional<TraceRecord> next() override {
    if (pos_ >= records_.size()) return std::nullopt;
    return records_[pos_++];
  }

 private:
  const Trace& records_;
  std::size_t pos_ = 0;
};

}  // namespace swl::trace

#endif  // SWL_TRACE_TRACE_HPP
