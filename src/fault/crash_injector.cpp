#include "fault/crash_injector.hpp"

namespace swl::fault {

nand::CrashDecision CrashInjector::on_operation(nand::CrashOp op) {
  const std::uint64_t index = operations_++;
  if (!armed_ || fired_) return nand::CrashDecision::proceed;
  if (crash_point_ == 2 * index) {
    fired_ = true;
    fired_op_ = op;
    return nand::CrashDecision::cut_before;
  }
  if (crash_point_ == 2 * index + 1) {
    fired_ = true;
    fired_op_ = op;
    return nand::CrashDecision::cut_during;
  }
  return nand::CrashDecision::proceed;
}

Status CrashSnapshotStore::write_slot(unsigned slot, const std::vector<std::uint8_t>& bytes) {
  switch (injector_.on_operation(nand::CrashOp::snapshot_write)) {
    case nand::CrashDecision::proceed:
      return inner_.write_slot(slot, bytes);
    case nand::CrashDecision::cut_before:
      throw nand::PowerLossError{};
    case nand::CrashDecision::cut_during: {
      // Half the encoding reached the medium; the checksum over the full
      // body can never validate such a prefix.
      const auto half = static_cast<std::ptrdiff_t>(bytes.size() / 2);
      // Benign discard: the prefix is torn garbage by construction; whether
      // the half-write itself also failed changes nothing for recovery.
      discard_status(inner_.write_slot(slot, {bytes.begin(), bytes.begin() + half}));
      throw nand::PowerLossError{};
    }
  }
  return Status::io_error;  // unreachable
}

std::vector<std::uint8_t> CrashSnapshotStore::read_slot(unsigned slot) const {
  return inner_.read_slot(slot);
}

}  // namespace swl::fault
