// Deterministic crash-point fault injection.
//
// Every persistent operation — page program, block erase, snapshot slot
// write — is a boundary at which power may be cut. Operation number i
// (0-based, in execution order) yields two crash points:
//   2*i     cut *before* the operation: power fails, the medium untouched;
//   2*i + 1 cut *during* it: the torn result is applied first — a consumed
//           (ECC-failing) page, a block full of garbage whose erase count
//           never incremented, or a truncated snapshot slot.
// A probe run with an unarmed injector counts the operations, so a workload
// performing N persistent operations has exactly 2*N crash points;
// recovery.hpp enumerates all of them exhaustively.
#ifndef SWL_FAULT_CRASH_INJECTOR_HPP
#define SWL_FAULT_CRASH_INJECTOR_HPP

#include <cstdint>
#include <vector>

#include "nand/power_loss.hpp"
#include "swl/snapshot.hpp"

namespace swl::fault {

/// The countdown shared by every persistent-operation source. Attach to a
/// chip via NandChip::set_power_loss_hook and to a SnapshotStore by wrapping
/// it in CrashSnapshotStore, so one crash-point numbering covers all of them.
class CrashInjector final : public nand::PowerLossHook {
 public:
  /// Unarmed (probe mode): counts operations, never cuts power.
  CrashInjector() = default;
  /// Armed at `crash_point` (see the numbering above).
  explicit CrashInjector(std::uint64_t crash_point) noexcept { arm(crash_point); }

  void arm(std::uint64_t crash_point) noexcept {
    armed_ = true;
    crash_point_ = crash_point;
  }
  void disarm() noexcept { armed_ = false; }

  /// Persistent operations observed so far (a probe run's total).
  [[nodiscard]] std::uint64_t operations() const noexcept { return operations_; }
  [[nodiscard]] bool fired() const noexcept { return fired_; }
  /// Operation kind at which power was cut (meaningful once fired()).
  [[nodiscard]] nand::CrashOp fired_op() const noexcept { return fired_op_; }

  nand::CrashDecision on_operation(nand::CrashOp op) override;

 private:
  std::uint64_t operations_ = 0;
  std::uint64_t crash_point_ = 0;
  bool armed_ = false;
  bool fired_ = false;
  nand::CrashOp fired_op_ = nand::CrashOp::program;
};

/// SnapshotStore decorator that routes slot writes through the injector so
/// the dual-buffer writes share the chip's crash-point numbering. A cut
/// *during* a slot write commits a truncated prefix of the encoding — the
/// torn dual-buffer write the snapshot checksum exists to catch — before
/// power dies.
class CrashSnapshotStore final : public wear::SnapshotStore {
 public:
  CrashSnapshotStore(wear::SnapshotStore& inner, CrashInjector& injector) noexcept
      : inner_(inner), injector_(injector) {}

  [[nodiscard]] Status write_slot(unsigned slot,
                                  const std::vector<std::uint8_t>& bytes) override;
  [[nodiscard]] std::vector<std::uint8_t> read_slot(unsigned slot) const override;

 private:
  wear::SnapshotStore& inner_;
  CrashInjector& injector_;
};

}  // namespace swl::fault

#endif  // SWL_FAULT_CRASH_INJECTOR_HPP
