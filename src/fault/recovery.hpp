// Crash-recovery drill: run a deterministic scripted workload against a
// fresh device, cut power at one chosen crash point (crash_injector.hpp),
// then rebuild everything a real controller would rebuild — the translation
// layer's mapping from spare areas (Ftl::mount / Nftl::mount) and the SW
// Leveler from its dual-buffer snapshots (LevelerPersistence) — and verify:
//   - no lost sectors: every acknowledged write reads back exactly (the one
//     unacknowledged in-flight write may surface as either version — that is
//     the out-of-place-update guarantee, not a violation);
//   - the layer's internal invariants hold (TranslationLayer::check_invariants);
//   - the leveler reloads whenever at least one save completed (the dual
//     buffer tolerates one torn slot), with a matching BET shape, an
//     in-range findex and an ecnt bounded by the erases that happened;
//   - sequence monotonicity: post-recovery snapshot saves and host writes
//     carry sequences newer than anything the crash left on the medium.
// run_crash_sweep enumerates *every* crash point of the workload through a
// SweepRunner; results are combined in submission order, so a parallel sweep
// is bit-identical to a serial one at any job count.
#ifndef SWL_FAULT_RECOVERY_HPP
#define SWL_FAULT_RECOVERY_HPP

#include <cstdint>

#include "core/geometry.hpp"
#include "dftl/dftl.hpp"
#include "ftl/ftl.hpp"
#include "nftl/nftl.hpp"
#include "runner/sweep_runner.hpp"
#include "sim/simulator.hpp"
#include "swl/leveler.hpp"

namespace swl::fault {

/// The scripted workload every crash point replays: `host_writes` writes
/// with a hot/cold skew (half the writes land on the first eighth of the
/// LBA space), a leveler snapshot every `snapshot_every` writes. Fully
/// deterministic: the same config always yields the same operation stream.
struct CrashWorkloadConfig {
  FlashGeometry geometry{16, 8, 512};
  NandTiming timing = default_timing(CellType::slc_small_block);
  sim::LayerKind layer = sim::LayerKind::ftl;
  /// A low threshold so the SW Leveler actually runs inside the workload
  /// (crashes mid-leveling are the interesting ones).
  wear::LevelerConfig leveler{.k = 0, .threshold = 4.0};
  ftl::FtlConfig ftl;
  /// 12 of the 16 default blocks exported: NFTL folds need pool slack.
  nftl::NftlConfig nftl{.vba_count = 12};
  /// Small translation pages and a 2-slot CMT so the default workload
  /// actually exercises fetches, evictions and write-back batching (one
  /// page-sized translation page would make the whole map one CMT slot).
  dftl::DftlConfig dftl{.lbas_per_tpage = 8, .cmt_capacity = 2, .writeback_batch = 2};
  std::uint64_t host_writes = 120;
  /// LevelerPersistence::save cadence in host writes (0 disables snapshots).
  std::uint64_t snapshot_every = 16;
  std::uint64_t workload_seed = 0x5EEDF00DULL;
};

/// What one crash point produced.
struct CrashPointOutcome {
  std::uint64_t crash_point = 0;
  /// False when the workload ran to completion before the budget hit (the
  /// point was at or past the end); the recovery drill still runs.
  bool crashed = false;
  /// Operation kind power was cut at (meaningful when crashed).
  nand::CrashOp crash_op = nand::CrashOp::program;
  /// FNV-1a digest of the fully recovered state (sector contents, leveler
  /// state, erase counts) — the serial-vs-parallel identity witness.
  std::uint64_t fingerprint = 0;
};

/// Persistent operations the workload performs crash-free (probe run).
[[nodiscard]] std::uint64_t count_operations(const CrashWorkloadConfig& config);

/// 2 * count_operations: every operation has a before- and a during-cut.
[[nodiscard]] std::uint64_t count_crash_points(const CrashWorkloadConfig& config);

/// Runs the workload with power cut at `crash_point`, then the recovery
/// drill. Throws InvariantError when recovery violates a guarantee.
[[nodiscard]] CrashPointOutcome run_crash_point(const CrashWorkloadConfig& config,
                                                std::uint64_t crash_point);

struct CrashSweepResult {
  std::uint64_t crash_points = 0;
  /// Points at which power was actually cut (must equal crash_points).
  std::uint64_t crashes = 0;
  /// Submission-order combination of every outcome's fingerprint.
  std::uint64_t fingerprint = 0;
};

/// Enumerates every crash point of the workload on `runner`; bit-identical
/// at any --jobs value. Throws on the first invariant violation.
[[nodiscard]] CrashSweepResult run_crash_sweep(const CrashWorkloadConfig& config,
                                               runner::SweepRunner& runner);

}  // namespace swl::fault

#endif  // SWL_FAULT_RECOVERY_HPP
