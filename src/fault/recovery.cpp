#include "fault/recovery.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "core/contracts.hpp"
#include "core/rng.hpp"
#include "fault/crash_injector.hpp"
#include "swl/snapshot.hpp"

namespace swl::fault {

namespace {

/// Incremental FNV-1a over 64-bit values (same constants as the snapshot
/// checksum, byte-fed so the digest is word-order exact).
class Fnv {
 public:
  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h_ ^= static_cast<std::uint8_t>(v >> (8 * i));
      h_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// A fresh device with a SW Leveler attached (the leveler is owned by the
/// layer; the raw pointer stays valid for the layer's lifetime).
struct Device {
  nand::NandChip chip;
  std::unique_ptr<tl::TranslationLayer> layer;
  wear::SwLeveler* leveler = nullptr;

  static nand::NandConfig chip_config(const CrashWorkloadConfig& config) {
    nand::NandConfig c;
    c.geometry = config.geometry;
    c.timing = config.timing;
    // DFTL stores translation pages as byte payloads.
    c.store_payload_bytes = config.layer == sim::LayerKind::dftl;
    return c;
  }

  explicit Device(const CrashWorkloadConfig& config)
      : chip(chip_config(config), /*clock=*/nullptr) {
    layer = sim::make_layer(config.layer, chip, config.ftl, config.nftl, config.dftl,
                            /*mounted=*/false);
    auto lev = std::make_unique<wear::SwLeveler>(config.geometry.block_count, config.leveler);
    leveler = lev.get();
    layer->attach_leveler(std::move(lev));
  }
};

/// Host-visible progress of the script, tracked *outside* the device so the
/// recovery drill can tell acknowledged writes from the one in flight.
struct ScriptState {
  std::vector<std::uint64_t> shadow;  // last acknowledged token per LBA (0 = none)
  Lba inflight_lba = kInvalidLba;
  std::uint64_t inflight_token = 0;
  std::uint64_t completed_saves = 0;
};

/// The scripted workload. Throws PowerLossError when the injector cuts.
void run_script(const CrashWorkloadConfig& config, tl::TranslationLayer& layer,
                const wear::SwLeveler& leveler, wear::LevelerPersistence& persistence,
                ScriptState& state) {
  Rng rng(config.workload_seed);
  const Lba lbas = layer.lba_count();
  const Lba hot_span = std::max<Lba>(1, lbas / 8);
  std::uint64_t next_token = 1;
  state.shadow.assign(lbas, 0);
  for (std::uint64_t w = 0; w < config.host_writes; ++w) {
    const Lba lba = rng.chance(0.5) ? static_cast<Lba>(rng.below(hot_span))
                                    : static_cast<Lba>(rng.below(lbas));
    const std::uint64_t token = next_token++;
    state.inflight_lba = lba;
    state.inflight_token = token;
    const Status st = layer.write(lba, token);
    SWL_ASSERT(st == Status::ok, "scripted workload write failed");
    state.shadow[lba] = token;  // acknowledged
    state.inflight_lba = kInvalidLba;
    if (config.snapshot_every != 0 && (w + 1) % config.snapshot_every == 0) {
      const Status saved = persistence.save(leveler);
      SWL_ASSERT(saved == Status::ok, "scripted snapshot save failed");
      ++state.completed_saves;
    }
  }
}

/// Newest sequence carried by any slot that still validates.
std::uint64_t max_stored_sequence(const wear::SnapshotStore& store) {
  std::uint64_t best = 0;
  for (unsigned slot = 0; slot < wear::SnapshotStore::kSlots; ++slot) {
    wear::Snapshot snap;
    std::uint64_t seq = 0;
    const auto bytes = store.read_slot(slot);
    if (bytes.empty()) continue;
    if (wear::decode_snapshot(bytes, &snap, &seq) != Status::ok) continue;
    best = std::max(best, seq);
  }
  return best;
}

}  // namespace

std::uint64_t count_operations(const CrashWorkloadConfig& config) {
  CrashInjector probe;  // unarmed: counts, never cuts
  Device dev(config);
  dev.chip.set_power_loss_hook(&probe);
  wear::MemorySnapshotStore store;
  CrashSnapshotStore guarded(store, probe);
  wear::LevelerPersistence persistence(guarded);
  ScriptState state;
  run_script(config, *dev.layer, *dev.leveler, persistence, state);
  return probe.operations();
}

std::uint64_t count_crash_points(const CrashWorkloadConfig& config) {
  return 2 * count_operations(config);
}

CrashPointOutcome run_crash_point(const CrashWorkloadConfig& config, std::uint64_t crash_point) {
  CrashPointOutcome out;
  out.crash_point = crash_point;

  CrashInjector injector(crash_point);
  Device dev(config);
  dev.chip.set_power_loss_hook(&injector);
  wear::MemorySnapshotStore store;
  CrashSnapshotStore guarded(store, injector);
  wear::LevelerPersistence persistence(guarded);
  ScriptState state;
  try {
    run_script(config, *dev.layer, *dev.leveler, persistence, state);
  } catch (const nand::PowerLossError&) {
    out.crashed = true;
    out.crash_op = injector.fired_op();
  }
  dev.chip.set_power_loss_hook(nullptr);

  // -- recovery drill --------------------------------------------------------
  dev.chip.forget_logical_state();
  auto recovered = sim::make_layer(config.layer, dev.chip, config.ftl, config.nftl, config.dftl,
                                   /*mounted=*/true);
  recovered->check_invariants();

  // Reload the leveler from the dual-buffer snapshots.
  auto leveler =
      std::make_unique<wear::SwLeveler>(config.geometry.block_count, config.leveler);
  wear::LevelerPersistence reloaded(store);
  const Status load = reloaded.load(*leveler);
  if (state.completed_saves > 0) {
    // A crash can tear at most the slot being written; the other slot must
    // still validate once any save completed.
    SWL_ASSERT(load == Status::ok, "dual-buffer snapshot lost despite a completed save");
  }
  if (load == Status::ok) {
    SWL_ASSERT(leveler->bet().block_count() == config.geometry.block_count &&
                   leveler->bet().k() == config.leveler.k,
               "restored BET shape does not match the device");
    SWL_ASSERT(leveler->findex() < leveler->bet().flag_count(),
               "restored findex out of range");
    std::uint64_t chip_erases = 0;
    for (const auto e : dev.chip.erase_counts()) chip_erases += e;
    SWL_ASSERT(leveler->ecnt() <= chip_erases,
               "restored ecnt exceeds the erases that ever happened");
  }

  // No lost sectors: acknowledged writes read back exactly; the in-flight
  // write may surface as either its old or its new version (out-of-place
  // updates never destroy the old version before the new one is durable).
  Fnv fnv;
  fnv.u64(crash_point);
  fnv.u64(out.crashed ? 1 : 0);
  fnv.u64(static_cast<std::uint64_t>(out.crash_op));
  const Lba lbas = recovered->lba_count();
  SWL_ASSERT(state.shadow.size() == lbas, "shadow map does not cover the device");
  for (Lba lba = 0; lba < lbas; ++lba) {
    std::uint64_t token = 0;
    const Status st = recovered->read(lba, &token);
    const std::uint64_t acked = state.shadow[lba];
    const bool inflight = out.crashed && lba == state.inflight_lba;
    if (st == Status::ok) {
      SWL_ASSERT(token == acked || (inflight && token == state.inflight_token),
                 "recovered sector does not match an acknowledged write");
    } else {
      SWL_ASSERT(st == Status::lba_not_mapped, "recovered sector unreadable");
      SWL_ASSERT(acked == 0, "acknowledged write lost by recovery");
    }
    fnv.u64(st == Status::ok ? token : 0);
  }

  // Snapshot sequence monotonicity: a post-recovery save must carry a newer
  // sequence than anything the crash left in the store.
  const std::uint64_t seq_before = max_stored_sequence(store);
  SWL_ASSERT(reloaded.save(*leveler) == Status::ok, "post-recovery snapshot save failed");
  SWL_ASSERT(max_stored_sequence(store) > seq_before,
             "post-recovery snapshot sequence did not advance");

  // Write-sequence monotonicity: a post-recovery host write must beat every
  // version the crash left on flash — prove it by remounting once more.
  const Lba probe_lba =
      (out.crashed && state.inflight_lba != kInvalidLba) ? state.inflight_lba : 0;
  const std::uint64_t probe_token = 0xF00D000000000000ULL + crash_point;
  SWL_ASSERT(recovered->write(probe_lba, probe_token) == Status::ok,
             "post-recovery write failed");
  dev.chip.forget_logical_state();
  auto remounted = sim::make_layer(config.layer, dev.chip, config.ftl, config.nftl, config.dftl,
                                   /*mounted=*/true);
  remounted->check_invariants();
  std::uint64_t token = 0;
  SWL_ASSERT(remounted->read(probe_lba, &token) == Status::ok,
             "post-recovery write unreadable after a second remount");
  SWL_ASSERT(token == probe_token, "post-recovery write lost to a stale version");

  fnv.u64(load == Status::ok ? 1 : 0);
  fnv.u64(leveler->ecnt());
  fnv.u64(leveler->findex());
  for (const auto w : leveler->bet().bits().words()) fnv.u64(w);
  for (const auto e : dev.chip.erase_counts()) fnv.u64(e);
  out.fingerprint = fnv.value();
  return out;
}

CrashSweepResult run_crash_sweep(const CrashWorkloadConfig& config,
                                 runner::SweepRunner& runner) {
  CrashSweepResult result;
  result.crash_points = count_crash_points(config);
  const auto outcomes =
      runner.map(static_cast<std::size_t>(result.crash_points),
                 [&config](std::size_t i) { return run_crash_point(config, i); });
  Fnv fnv;
  for (const auto& o : outcomes) {
    SWL_ASSERT(o.crashed, "enumerated crash point did not cut power");
    ++result.crashes;
    fnv.u64(o.crash_point);
    fnv.u64(o.fingerprint);
  }
  result.fingerprint = fnv.value();
  return result;
}

}  // namespace swl::fault
