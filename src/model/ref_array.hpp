// Reference oracle for the multi-chip array (src/array).
//
// Extends the differential-testing scheme of this directory to array scale:
//   - RefArrayWear tallies every chip's erases through its own chip
//     observers — ground truth independent of the array's accounting — and
//     recomputes each GlobalLevelCoordinator decision from those tallies
//     with the coordinator's own pure decide() rule plus a mirrored
//     round/cooldown state. A coordinator that migrates when it should not,
//     picks the wrong chips, or misses a trigger diverges from the mirror.
//   - Per-chip RefSwLeveler mirrors (one per BET) verify every chip's SW
//     Leveler exactly like the single-chip fuzzer does.
//
// Decision checking is two-phase because the migration itself erases blocks:
// capture expected_decision() *before* GlobalLevelCoordinator::evaluate_round
// (both then see the same pre-migration tallies), then hand the actual
// decision to on_decision() for comparison and mirror advance.
//
// run_array_check is the self-contained harness swl_fuzz --array-smoke
// drives: a seeded mini array experiment, checked every round, returning a
// result fingerprint so the caller can also pin jobs-independence.
#ifndef SWL_MODEL_REF_ARRAY_HPP
#define SWL_MODEL_REF_ARRAY_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "array/chip_array.hpp"
#include "array/global_coordinator.hpp"
#include "model/ref_swl.hpp"

namespace swl::model {

class RefArrayWear {
 public:
  /// `leveler` is the per-chip SW Leveler config when the chips run one
  /// (enables the per-chip RefSwLeveler mirrors); nullopt when they don't.
  RefArrayWear(const array::ChipArray& array_shape, array::CoordinatorConfig coordinator,
               std::optional<wear::LevelerConfig> leveler);

  /// Unhooks from the array when still attached: destroying the oracle
  /// before the array used to leave dangling erase observers (the PR 2 bug
  /// class); now the destructor detaches itself.
  ~RefArrayWear();
  RefArrayWear(const RefArrayWear&) = delete;
  RefArrayWear& operator=(const RefArrayWear&) = delete;

  /// Registers erase observers on every chip and wires the per-chip
  /// RefSwLeveler mirrors (trace sink + resync). Call once, on a freshly
  /// built array (the tallies start at the chips' all-zero counts). The
  /// array must stay alive while attached (the destructor unhooks from it).
  void attach(array::ChipArray& array);

  /// Deregisters all observers and trace sinks (so the array may be
  /// destroyed while the oracle lives on).
  void detach(array::ChipArray& array);

  /// The decision the coordinator must make next, recomputed from the
  /// oracle's own tallies and mirrored round/cooldown state. Capture this
  /// BEFORE evaluate_round — the migration's own erases land in the tallies
  /// and would skew a post-hoc recomputation.
  [[nodiscard]] array::Decision expected_decision() const;

  /// Compares the coordinator's actual decision against the captured
  /// expectation and advances the mirror. Returns "" when consistent, else
  /// a diagnostic. Call exactly once per round.
  [[nodiscard]] std::string on_decision(const array::Decision& expected,
                                        const array::Decision& actual);

  /// Verifies every chip's SW Leveler against its RefSwLeveler mirror and
  /// the oracle's per-chip mean erases against the array's own accounting.
  [[nodiscard]] std::string check(const array::ChipArray& array) const;

  /// Ground-truth per-chip mean erase counts (tally / blocks-per-chip).
  [[nodiscard]] std::vector<double> mean_erases() const;

 private:
  array::CoordinatorConfig coordinator_config_;
  std::uint32_t chip_count_ = 0;
  std::size_t blocks_per_chip_ = 0;
  std::uint64_t round_ = 0;
  std::uint32_t cooldown_left_ = 0;
  /// Per-chip erase tallies. Distinct elements are written by distinct
  /// round workers (one chip = one worker per round), which is race-free;
  /// the coordinating thread reads them only after the round barrier.
  std::vector<std::uint64_t> erases_;
  std::vector<std::unique_ptr<RefSwLeveler>> ref_levelers_;  // empty w/o SWL
  std::vector<std::size_t> observer_tokens_;
  /// The array we are attached to (null when detached); lets the destructor
  /// redeem the observer tokens without help from the caller.
  array::ChipArray* attached_array_ = nullptr;
  bool attached_ = false;
};

/// Outcome of one seeded array check run.
struct ArrayCheckResult {
  bool passed = true;
  std::string message;          ///< first divergence (empty when passed)
  std::uint64_t fingerprint = 0;  ///< digest of the final per-chip results
  std::uint64_t migrations = 0;
  std::uint64_t rounds = 0;
};

/// Runs a small seeded array experiment (geometry, leveler tuning and
/// coordinator threshold all derived from `seed`) with RefArrayWear checking
/// every coordinator decision and every per-chip BET after every round.
/// `jobs` sets the worker count; the fingerprint must not depend on it.
[[nodiscard]] ArrayCheckResult run_array_check(std::uint64_t seed, std::uint32_t jobs);

}  // namespace swl::model

#endif  // SWL_MODEL_REF_ARRAY_HPP
