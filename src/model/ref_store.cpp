#include "model/ref_store.hpp"

#include <sstream>

#include "core/contracts.hpp"

namespace swl::model {

namespace {

std::string lba_diag(const char* what, Lba lba, std::uint64_t got, std::uint64_t want) {
  std::ostringstream os;
  os << what << " at LBA " << lba << ": device " << got << ", reference " << want;
  return os.str();
}

}  // namespace

RefStore::RefStore(Lba lba_count) : tokens_(lba_count, 0) {}

void RefStore::begin_write(Lba lba, std::uint64_t token) {
  SWL_REQUIRE(lba < tokens_.size(), "LBA out of range");
  SWL_REQUIRE(inflight_lba_ == kInvalidLba, "a write is already in flight");
  inflight_lba_ = lba;
  inflight_token_ = token;
}

void RefStore::ack_write() {
  SWL_REQUIRE(inflight_lba_ != kInvalidLba, "no write in flight");
  tokens_[inflight_lba_] = inflight_token_;
  inflight_lba_ = kInvalidLba;
}

void RefStore::fail_write() {
  SWL_REQUIRE(inflight_lba_ != kInvalidLba, "no write in flight");
  inflight_lba_ = kInvalidLba;
}

std::string RefStore::resolve_after_crash(tl::TranslationLayer& layer) {
  if (inflight_lba_ == kInvalidLba) return {};
  const Lba lba = inflight_lba_;
  const std::uint64_t old_token = tokens_[lba];
  inflight_lba_ = kInvalidLba;
  std::uint64_t token = 0;
  const Status st = layer.read(lba, &token);
  if (st == Status::lba_not_mapped) {
    if (old_token != 0) return lba_diag("crash lost the acknowledged version", lba, 0, old_token);
    return {};  // never durably written; fine
  }
  if (st != Status::ok) return "in-flight LBA unreadable after recovery";
  if (token == inflight_token_) {
    tokens_[lba] = token;  // the new version made it to the medium — adopt it
    return {};
  }
  if (token != old_token) {
    return lba_diag("in-flight LBA holds neither version after recovery", lba, token, old_token);
  }
  return {};
}

std::string RefStore::check_contents(tl::TranslationLayer& layer, bool fast_api) const {
  SWL_REQUIRE(inflight_lba_ == kInvalidLba, "checking with a write in flight");
  if (layer.lba_count() != tokens_.size()) return "layer exports a different LBA count";
  for (Lba lba = 0; lba < tokens_.size(); ++lba) {
    std::uint64_t token = 0;
    const Status st =
        fast_api ? layer.read_record(lba, &token) : layer.read(lba, &token);
    if (tokens_[lba] == 0) {
      if (st != Status::lba_not_mapped) {
        return lba_diag("never-written LBA is mapped", lba, token, 0);
      }
      continue;
    }
    if (st != Status::ok) return lba_diag("acknowledged write unreadable", lba, 0, tokens_[lba]);
    if (token != tokens_[lba]) return lba_diag("content mismatch", lba, token, tokens_[lba]);
  }
  return {};
}

RefWear::RefWear(BlockIndex block_count) : per_block_(block_count, 0) {}

void RefWear::on_chip_erase(BlockIndex block) {
  SWL_REQUIRE(block < per_block_.size(), "erased block out of range");
  ++per_block_[block];
  ++total_;
}

std::string RefWear::check(const nand::NandChip& chip, std::uint64_t attributed_erases) const {
  const auto& counts = chip.erase_counts();
  if (counts.size() != per_block_.size()) return "chip covers a different block count";
  for (BlockIndex b = 0; b < per_block_.size(); ++b) {
    if (counts[b] != per_block_[b]) {
      std::ostringstream os;
      os << "erase count of block " << b << ": chip " << counts[b] << ", reference "
         << per_block_[b];
      return os.str();
    }
  }
  if (chip.counters().erases != total_) {
    std::ostringstream os;
    os << "chip erase counter " << chip.counters().erases << " != observed erases " << total_;
    return os.str();
  }
  if (attributed_erases != total_) {
    std::ostringstream os;
    os << "layer erase attribution " << attributed_erases << " != observed erases " << total_;
    return os.str();
  }
  return {};
}

std::string check_mapping(const ftl::Ftl& ftl) {
  const nand::NandChip& chip = ftl.chip();
  const auto& geo = chip.geometry();
  std::vector<std::uint8_t> referenced(geo.page_count(), 0);
  std::uint64_t mapped = 0;
  for (Lba lba = 0; lba < ftl.lba_count(); ++lba) {
    const Ppa ppa = ftl.translate(lba);
    if (!ppa.valid()) continue;
    ++mapped;
    std::ostringstream os;
    if (chip.page_state(ppa) != nand::PageState::valid) {
      os << "FTL maps LBA " << lba << " to a non-valid page";
      return os.str();
    }
    if (chip.spare(ppa).lba != lba) {
      os << "FTL maps LBA " << lba << " to a page whose spare names LBA " << chip.spare(ppa).lba;
      return os.str();
    }
    const std::uint64_t flat =
        static_cast<std::uint64_t>(ppa.block) * geo.pages_per_block + ppa.page;
    if (referenced[flat] != 0) {
      os << "two LBAs map to the same physical page (block " << ppa.block << ", page "
         << ppa.page << ")";
      return os.str();
    }
    referenced[flat] = 1;
  }
  std::uint64_t valid_pages = 0;
  for (BlockIndex b = 0; b < geo.block_count; ++b) valid_pages += chip.valid_page_count(b);
  if (valid_pages != mapped) {
    std::ostringstream os;
    os << "FTL: " << valid_pages << " valid pages on chip but " << mapped << " mapped LBAs";
    return os.str();
  }
  return {};
}

std::string check_mapping(const nftl::Nftl& nftl) {
  const nand::NandChip& chip = nftl.chip();
  const auto& geo = chip.geometry();
  const PageIndex pages = geo.pages_per_block;
  std::vector<std::uint8_t> referenced(geo.page_count(), 0);
  std::uint64_t mapped = 0;
  for (Vba vba = 0; vba < nftl.vba_count(); ++vba) {
    const BlockIndex primary = nftl.primary_block(vba);
    const BlockIndex replacement = nftl.replacement_block(vba);
    if (primary == kInvalidBlock && replacement != kInvalidBlock) {
      std::ostringstream os;
      os << "NFTL VBA " << vba << " has a replacement block but no primary";
      return os.str();
    }
    if (primary != kInvalidBlock && primary == replacement) {
      std::ostringstream os;
      os << "NFTL VBA " << vba << " uses one block as both primary and replacement";
      return os.str();
    }
  }
  for (Lba lba = 0; lba < nftl.lba_count(); ++lba) {
    const Vba vba = lba / pages;
    const PageIndex offset = lba % pages;
    const Ppa ppa = nftl.translate(lba);
    if (!ppa.valid()) continue;
    ++mapped;
    std::ostringstream os;
    if (chip.page_state(ppa) != nand::PageState::valid) {
      os << "NFTL maps LBA " << lba << " to a non-valid page";
      return os.str();
    }
    if (chip.spare(ppa).lba != lba) {
      os << "NFTL maps LBA " << lba << " to a page whose spare names LBA " << chip.spare(ppa).lba;
      return os.str();
    }
    const BlockIndex primary = nftl.primary_block(vba);
    const BlockIndex replacement = nftl.replacement_block(vba);
    if (ppa.block == primary) {
      if (ppa.page != offset) {
        os << "NFTL LBA " << lba << " lives in its primary block at page " << ppa.page
           << " instead of its offset " << offset;
        return os.str();
      }
    } else if (ppa.block != replacement) {
      os << "NFTL LBA " << lba << " lives in block " << ppa.block
         << ", neither the primary nor the replacement of VBA " << vba;
      return os.str();
    }
    const std::uint64_t flat = static_cast<std::uint64_t>(ppa.block) * pages + ppa.page;
    if (referenced[flat] != 0) {
      os << "two LBAs map to the same physical page (block " << ppa.block << ", page "
         << ppa.page << ")";
      return os.str();
    }
    referenced[flat] = 1;
  }
  std::uint64_t valid_pages = 0;
  for (BlockIndex b = 0; b < geo.block_count; ++b) valid_pages += chip.valid_page_count(b);
  if (valid_pages != mapped) {
    std::ostringstream os;
    os << "NFTL: " << valid_pages << " valid pages on chip but " << mapped << " mapped LBAs";
    return os.str();
  }
  return {};
}

std::string check_mapping(const dftl::Dftl& dftl) {
  const nand::NandChip& chip = dftl.chip();
  const auto& geo = chip.geometry();
  std::vector<std::uint8_t> referenced(geo.page_count(), 0);
  std::uint64_t mapped = 0;
  for (Lba lba = 0; lba < dftl.lba_count(); ++lba) {
    const Ppa ppa = dftl.translate(lba);
    if (!ppa.valid()) continue;
    ++mapped;
    std::ostringstream os;
    if (chip.page_state(ppa) != nand::PageState::valid) {
      os << "DFTL maps LBA " << lba << " to a non-valid page";
      return os.str();
    }
    if (chip.spare(ppa).role == nand::PageRole::translation) {
      os << "DFTL maps LBA " << lba << " to a translation page";
      return os.str();
    }
    if (chip.spare(ppa).lba != lba) {
      os << "DFTL maps LBA " << lba << " to a page whose spare names LBA " << chip.spare(ppa).lba;
      return os.str();
    }
    const std::uint64_t flat =
        static_cast<std::uint64_t>(ppa.block) * geo.pages_per_block + ppa.page;
    if (referenced[flat] != 0) {
      os << "two LBAs map to the same physical page (block " << ppa.block << ", page "
         << ppa.page << ")";
      return os.str();
    }
    referenced[flat] = 1;
  }
  std::uint64_t directory = 0;
  for (Lba tvpn = 0; tvpn < dftl.tpage_count(); ++tvpn) {
    const Ppa ppa = dftl.tpage_location(tvpn);
    if (!ppa.valid()) continue;
    ++directory;
    std::ostringstream os;
    if (chip.page_state(ppa) != nand::PageState::valid) {
      os << "DFTL GTD entry " << tvpn << " names a non-valid page";
      return os.str();
    }
    if (chip.spare(ppa).role != nand::PageRole::translation) {
      os << "DFTL GTD entry " << tvpn << " names a non-translation page";
      return os.str();
    }
    if (chip.spare(ppa).lba != tvpn) {
      os << "DFTL GTD entry " << tvpn << " names a translation page whose spare carries tvpn "
         << chip.spare(ppa).lba;
      return os.str();
    }
    const std::uint64_t flat =
        static_cast<std::uint64_t>(ppa.block) * geo.pages_per_block + ppa.page;
    if (referenced[flat] != 0) {
      os << "DFTL GTD entry " << tvpn << " shares a physical page (block " << ppa.block
         << ", page " << ppa.page << ")";
      return os.str();
    }
    referenced[flat] = 1;
  }
  std::uint64_t valid_data = 0;
  std::uint64_t valid_trans = 0;
  for (BlockIndex b = 0; b < geo.block_count; ++b) {
    for (PageIndex p = 0; p < geo.pages_per_block; ++p) {
      const Ppa ppa{b, p};
      if (chip.page_state(ppa) != nand::PageState::valid) continue;
      if (chip.spare(ppa).role == nand::PageRole::translation) {
        ++valid_trans;
      } else {
        ++valid_data;
      }
    }
  }
  if (valid_data != mapped) {
    std::ostringstream os;
    os << "DFTL: " << valid_data << " valid data pages on chip but " << mapped
       << " mapped LBAs";
    return os.str();
  }
  if (valid_trans != directory) {
    std::ostringstream os;
    os << "DFTL: " << valid_trans << " valid translation pages on chip but " << directory
       << " GTD entries";
    return os.str();
  }
  return {};
}

std::string check_mapping(const tl::TranslationLayer& layer) {
  if (const auto* f = dynamic_cast<const ftl::Ftl*>(&layer)) return check_mapping(*f);
  if (const auto* n = dynamic_cast<const nftl::Nftl*>(&layer)) return check_mapping(*n);
  if (const auto* d = dynamic_cast<const dftl::Dftl*>(&layer)) return check_mapping(*d);
  return {};
}

}  // namespace swl::model
