// Reference models of everything host-visible below the SW Leveler:
//
//   RefStore — the logical contents oracle: a plain token-per-LBA array the
//   fuzz driver updates alongside every host write, with in-flight tracking
//   so a power cut mid-write accepts either the old or the new version
//   (the out-of-place-update guarantee) but nothing else.
//
//   RefWear — the erase-accounting oracle: per-block erase tallies fed from
//   the chip's own erase observer, cross-checked against the chip's counts
//   and the translation layer's gc/swl attribution split.
//
//   check_mapping — the executable page-map (FTL), block-map (NFTL) and
//   flash-resident-map (DFTL) references: every mapped LBA must resolve to a
//   valid page whose spare area names that LBA, no two LBAs may share a
//   page, NFTL locations must live in the owning VBA's primary block (at the
//   LBA's offset) or its replacement block, and every DFTL GTD entry must
//   name a distinct valid translation-role page whose spare carries the
//   translation virtual page number.
#ifndef SWL_MODEL_REF_STORE_HPP
#define SWL_MODEL_REF_STORE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "dftl/dftl.hpp"
#include "ftl/ftl.hpp"
#include "nand/nand_chip.hpp"
#include "nftl/nftl.hpp"
#include "tl/translation_layer.hpp"

namespace swl::model {

class RefStore {
 public:
  explicit RefStore(Lba lba_count);

  /// Declares a write in flight; resolved by ack_write / fail_write, or by
  /// resolve_after_crash when power died before either.
  void begin_write(Lba lba, std::uint64_t token);
  void ack_write();
  /// The write failed (program_failed storm / out_of_space): the previous
  /// version stands.
  void fail_write();

  /// After a crash + remount: reads the in-flight LBA once and accepts
  /// whichever of {old, new} version survived, adopting it as the truth.
  /// Returns "" or a diagnostic when neither version is there.
  [[nodiscard]] std::string resolve_after_crash(tl::TranslationLayer& layer);

  /// Sweeps every LBA through read_record (fast_api) or the virtual read and
  /// compares against the model. Returns "" when consistent.
  [[nodiscard]] std::string check_contents(tl::TranslationLayer& layer, bool fast_api) const;

  [[nodiscard]] Lba lba_count() const noexcept { return static_cast<Lba>(tokens_.size()); }
  [[nodiscard]] const std::vector<std::uint64_t>& tokens() const noexcept { return tokens_; }

 private:
  std::vector<std::uint64_t> tokens_;  // 0 = never written
  Lba inflight_lba_ = kInvalidLba;
  std::uint64_t inflight_token_ = 0;
};

class RefWear {
 public:
  explicit RefWear(BlockIndex block_count);

  /// Wire to NandChip::add_erase_observer (fires on successful erases only).
  void on_chip_erase(BlockIndex block);

  /// Verifies chip erase counts, the chip's total-erase counter and the
  /// layer-attributed erase total against the tally. `attributed_erases` is
  /// the sum of gc_erases + swl_erases across every layer incarnation on
  /// this chip (layer counters restart at each remount; the chip's do not).
  /// Returns "" or a diagnostic. Assumes a chip that started fresh.
  [[nodiscard]] std::string check(const nand::NandChip& chip,
                                  std::uint64_t attributed_erases) const;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

 private:
  std::vector<std::uint64_t> per_block_;
  std::uint64_t total_ = 0;
};

/// Structural mapping checks; dispatches on the layer's concrete type and
/// returns "" for layers without a reference (never happens in the fuzzer).
[[nodiscard]] std::string check_mapping(const tl::TranslationLayer& layer);
[[nodiscard]] std::string check_mapping(const ftl::Ftl& ftl);
[[nodiscard]] std::string check_mapping(const nftl::Nftl& nftl);
[[nodiscard]] std::string check_mapping(const dftl::Dftl& dftl);

}  // namespace swl::model

#endif  // SWL_MODEL_REF_STORE_HPP
