// Executable reference model of the DFTL mapping cache.
//
// Where the production Dftl maintains the CMT as a flat arena with an
// index-based LRU list and the GTD as a packed Ppa vector, this oracle
// re-derives the *observable* mapping-cache state — which translation pages
// are resident, which are dirty, and where the current flash version of each
// lives — purely from the DftlTraceSink event stream. Event-time rules:
//
//   on_fetch(tvpn, from_flash)  — the page must not already be resident, and
//       from_flash must match whether the model knows a flash version;
//   on_evict(tvpn)              — the page must be resident and clean (the
//       layer always writes a dirty victim back before evicting);
//   on_mark_dirty(tvpn)         — the page must be resident;
//   on_tpage_program(tvpn, where, cause)
//       writeback   — resident and dirty; becomes clean, version moves;
//       gc_update   — not resident (direct RMW path never touches the CMT);
//       gc_relocate — clean if resident (dirty pages flush as writebacks);
//       recovery    — not resident (mount runs before any admission).
//
// A rule violation is recorded sticky and surfaces from the next check();
// check() additionally compares the replayed state against the layer's
// introspection for every translation page. resync() adopts a freshly
// mounted layer as the new baseline after a power cycle (the CMT restarts
// empty; flash versions come from the rebuilt GTD).
#ifndef SWL_MODEL_REF_DFTL_HPP
#define SWL_MODEL_REF_DFTL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "dftl/dftl.hpp"

namespace swl::model {

class RefDftl final : public dftl::DftlTraceSink {
 public:
  /// Models a fresh layer: nothing resident, no flash versions. Wire via
  /// Dftl::set_trace_sink before the first host operation (or resync()).
  explicit RefDftl(Lba tpage_count);

  // DftlTraceSink. Verified at event time; a mismatch is sticky and
  // surfaces from the next check().
  void on_fetch(Lba tvpn, bool from_flash) override;
  void on_evict(Lba tvpn) override;
  void on_mark_dirty(Lba tvpn) override;
  void on_tpage_program(Lba tvpn, Ppa where, dftl::TpageWrite cause) override;

  /// Compares the replayed residency/dirty/version state against the
  /// layer's introspection. Returns "" when consistent, else a diagnostic.
  [[nodiscard]] std::string check(const dftl::Dftl& layer) const;

  /// Adopts a freshly mounted layer as the new baseline after a power
  /// cycle: mount events are not observed (the sink attaches after mount),
  /// so the replayed state restarts from introspection.
  void resync(const dftl::Dftl& layer);

  [[nodiscard]] Lba tpage_count() const noexcept { return static_cast<Lba>(resident_.size()); }
  [[nodiscard]] std::uint32_t resident_count() const noexcept { return resident_count_; }

 private:
  void record_event_error(std::string message);

  std::vector<std::uint8_t> resident_;
  std::vector<std::uint8_t> dirty_;
  std::vector<Ppa> location_;  // current flash version (kInvalidPpa = none)
  std::uint32_t resident_count_ = 0;
  std::string event_error_;  // first event-time mismatch (sticky)
};

}  // namespace swl::model

#endif  // SWL_MODEL_REF_DFTL_HPP
