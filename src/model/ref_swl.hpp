// Executable reference model of the SW Leveler (Algorithms 1–2).
//
// Where the production SwLeveler maintains ecnt/fcnt incrementally and the
// BET as a bit vector, this oracle keeps the *raw erase log* of the current
// resetting interval — fed straight from the chip's erase observer, not from
// the leveler, so a production leveler that drops an SWL-BETUpdate is caught
// — and recomputes every quantity from it the obvious way:
//   ecnt  = length of the log,
//   BET   = union of the flags covering logged blocks,
//   fcnt  = popcount of that union,
//   unevenness = ecnt / fcnt.
// The cyclic-scan cursor and the per-interval findex randomization are
// cross-checked through the leveler's LevelerTraceSink events: every
// selection must land on the first clear flag the scan would find, and every
// reset must re-randomize findex with the mirrored RNG stream.
#ifndef SWL_MODEL_REF_SWL_HPP
#define SWL_MODEL_REF_SWL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "swl/leveler.hpp"

namespace swl::model {

class RefSwLeveler final : public wear::LevelerTraceSink {
 public:
  RefSwLeveler(BlockIndex block_count, const wear::LevelerConfig& config);

  /// Ground-truth erase feed; wire to NandChip::add_erase_observer so the
  /// model sees every erase whether or not the leveler's BETUpdate ran.
  void on_chip_erase(BlockIndex block);

  // LevelerTraceSink (wire via SwLeveler::set_trace_sink). Selection and
  // reset events are verified at event time; a mismatch is sticky and
  // surfaces from the next check().
  void on_select(std::size_t flag) override;
  void on_reset(std::size_t new_findex) override;

  /// Recomputes everything from the raw log and compares against the
  /// production leveler. Returns "" when consistent, else a diagnostic.
  [[nodiscard]] std::string check(const wear::SwLeveler& leveler) const;

  /// Adopts a freshly constructed (optionally snapshot-restored) leveler as
  /// the new baseline after a power cycle: the erase log restarts empty on
  /// top of the restored BET/ecnt, and the RNG mirror restarts from the
  /// config seed exactly like the new leveler's own stream. Requires the
  /// restored findex to be in range (SwLeveler::restore_state re-randomizes
  /// out-of-range cursors, which would desynchronize the mirror).
  void resync(const wear::SwLeveler& leveler);

  // -- naive recomputation (exposed for direct unit testing) -----------------

  [[nodiscard]] std::uint64_t ecnt() const noexcept {
    return baseline_ecnt_ + erase_log_.size();
  }
  [[nodiscard]] std::vector<bool> flags() const;
  [[nodiscard]] std::uint64_t fcnt() const;
  [[nodiscard]] double unevenness() const;
  [[nodiscard]] bool needs_leveling() const;
  [[nodiscard]] std::size_t expected_findex() const noexcept { return expected_findex_; }
  [[nodiscard]] std::size_t flag_count() const noexcept { return flag_count_; }
  [[nodiscard]] const std::vector<BlockIndex>& erase_log() const noexcept { return erase_log_; }

 private:
  [[nodiscard]] std::size_t flag_of(BlockIndex block) const noexcept { return block >> k_; }
  /// First clear flag at or after `start`, cyclically; flag_count_ when all
  /// flags are set (which Algorithm 1 never lets a selection see).
  [[nodiscard]] std::size_t next_clear(const std::vector<bool>& f, std::size_t start) const;
  void record_event_error(std::string message);

  BlockIndex block_count_;
  std::uint32_t k_;
  std::size_t flag_count_;
  double threshold_;
  wear::LevelerConfig::Selection selection_;
  std::uint64_t rng_seed_;
  Rng rng_;  // mirrors the production leveler's private stream
  std::vector<BlockIndex> erase_log_;  // erases since the last reset/resync
  std::vector<bool> baseline_flags_;   // BET adopted at the last resync
  std::uint64_t baseline_ecnt_ = 0;
  std::size_t expected_findex_ = 0;
  std::string event_error_;  // first event-time mismatch (sticky)
};

}  // namespace swl::model

#endif  // SWL_MODEL_REF_SWL_HPP
