#include "model/ref_array.hpp"

#include <sstream>

#include "core/contracts.hpp"
#include "sim/array_experiment.hpp"
#include "sim/sharded_replay.hpp"
#include "trace/segment_replay.hpp"

namespace swl::model {

RefArrayWear::RefArrayWear(const array::ChipArray& array_shape,
                           array::CoordinatorConfig coordinator,
                           std::optional<wear::LevelerConfig> leveler)
    : coordinator_config_(coordinator),
      chip_count_(array_shape.chip_count()),
      blocks_per_chip_(
          array_shape.chip_sim(0).chip().geometry().block_count) {
  erases_.assign(chip_count_, 0);
  if (leveler.has_value()) {
    ref_levelers_.reserve(chip_count_);
    for (std::uint32_t c = 0; c < chip_count_; ++c) {
      ref_levelers_.push_back(std::make_unique<RefSwLeveler>(
          static_cast<BlockIndex>(blocks_per_chip_), *leveler));
    }
  }
}

RefArrayWear::~RefArrayWear() {
  if (attached_) detach(*attached_array_);
}

void RefArrayWear::attach(array::ChipArray& array) {
  SWL_REQUIRE(!attached_, "oracle already attached");
  SWL_REQUIRE(array.chip_count() == chip_count_, "oracle was built for a different array");
  observer_tokens_.reserve(chip_count_);
  for (std::uint32_t c = 0; c < chip_count_; ++c) {
    observer_tokens_.push_back(array.chip_sim(c).chip().add_erase_observer(
        [this, c](BlockIndex block, std::uint32_t) {
          ++erases_[c];
          if (!ref_levelers_.empty()) ref_levelers_[c]->on_chip_erase(block);
        }));
    if (!ref_levelers_.empty()) {
      auto* lev = dynamic_cast<wear::SwLeveler*>(array.chip_sim(c).layer().leveler());
      SWL_REQUIRE(lev != nullptr, "chip has no SW Leveler to mirror");
      lev->set_trace_sink(ref_levelers_[c].get());
      ref_levelers_[c]->resync(*lev);
    }
  }
  attached_array_ = &array;
  attached_ = true;
}

void RefArrayWear::detach(array::ChipArray& array) {
  if (!attached_) return;
  for (std::uint32_t c = 0; c < chip_count_; ++c) {
    array.chip_sim(c).chip().remove_erase_observer(observer_tokens_[c]);
    if (!ref_levelers_.empty()) {
      if (auto* lev = dynamic_cast<wear::SwLeveler*>(array.chip_sim(c).layer().leveler())) {
        lev->set_trace_sink(nullptr);
      }
    }
  }
  observer_tokens_.clear();
  attached_array_ = nullptr;
  attached_ = false;
}

array::Decision RefArrayWear::expected_decision() const {
  const std::vector<double> means = mean_erases();
  return array::GlobalLevelCoordinator::decide(means, coordinator_config_, round_,
                                               cooldown_left_);
}

std::string RefArrayWear::on_decision(const array::Decision& expected,
                                      const array::Decision& actual) {
  std::string error;
  if (!(expected == actual)) {
    std::ostringstream os;
    os << "coordinator decision diverged at round " << round_ << ": expected {migrate="
       << expected.migrate << " from=" << expected.from_chip << " to=" << expected.to_chip
       << " ratio=" << expected.ratio << "}, got {migrate=" << actual.migrate
       << " from=" << actual.from_chip << " to=" << actual.to_chip << " ratio=" << actual.ratio
       << "}";
    error = os.str();
  }
  // Advance the mirror from the *expected* decision so it stays internally
  // consistent (the divergence above is already reported).
  if (expected.migrate) {
    cooldown_left_ = coordinator_config_.cooldown_rounds;
  } else if (cooldown_left_ > 0) {
    --cooldown_left_;
  }
  ++round_;
  return error;
}

std::string RefArrayWear::check(const array::ChipArray& array) const {
  const std::vector<double> means = mean_erases();
  for (std::uint32_t c = 0; c < chip_count_; ++c) {
    // Both sides divide integer erase totals by the block count, so a
    // healthy array matches exactly — any drift means lost or phantom
    // erases in one of the accountings.
    if (means[c] != array.mean_erase_count(c)) {
      std::ostringstream os;
      os << "chip " << c << " mean erase count diverged: oracle " << means[c] << ", array "
         << array.mean_erase_count(c);
      return os.str();
    }
    if (!ref_levelers_.empty()) {
      const auto* lev =
          dynamic_cast<const wear::SwLeveler*>(array.chip_sim(c).layer().leveler());
      if (lev == nullptr) return "chip lost its SW Leveler";
      if (std::string err = ref_levelers_[c]->check(*lev); !err.empty()) {
        return "chip " + std::to_string(c) + ": " + err;
      }
    }
  }
  return "";
}

std::vector<double> RefArrayWear::mean_erases() const {
  std::vector<double> means(chip_count_);
  for (std::uint32_t c = 0; c < chip_count_; ++c) {
    means[c] = static_cast<double>(erases_[c]) / static_cast<double>(blocks_per_chip_);
  }
  return means;
}

namespace {

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFFU;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::uint64_t fingerprint_result(std::uint64_t hash, const sim::SimResult& r) {
  hash = fnv1a(hash, r.records_processed);
  hash = fnv1a(hash, r.counters.host_writes);
  hash = fnv1a(hash, r.counters.host_reads);
  hash = fnv1a(hash, r.counters.gc_erases);
  hash = fnv1a(hash, r.counters.swl_erases);
  hash = fnv1a(hash, r.counters.gc_live_copies);
  hash = fnv1a(hash, r.counters.swl_live_copies);
  hash = fnv1a(hash, r.chip_counters.programs);
  hash = fnv1a(hash, r.chip_counters.erases);
  hash = fnv1a(hash, r.leveler_stats.collections_requested);
  hash = fnv1a(hash, r.leveler_stats.bet_resets);
  for (const std::uint32_t c : r.erase_counts) hash = fnv1a(hash, c);
  return hash;
}

}  // namespace

ArrayCheckResult run_array_check(std::uint64_t seed, std::uint32_t jobs) {
  // Small, seed-varied array experiment: tight budgets keep one check in the
  // tens of milliseconds so smoke runs cover many seeds.
  const std::uint64_t r0 = sim::shard_seed(seed, 0);
  const std::uint64_t r1 = sim::shard_seed(seed, 1);
  sim::ArrayScale scale;
  scale.chip.block_count = 32 + 16 * static_cast<BlockIndex>(r0 % 2);
  scale.chip.endurance = 60 + static_cast<std::uint32_t>(r0 % 40);
  scale.chip.base_trace_days = 0.05;
  scale.chip.seed = seed;
  scale.channels = 2;
  scale.dies = 1 + static_cast<std::uint32_t>(r0 % 2);
  scale.coordinator.threshold = 1.02 + 0.04 * static_cast<double>(r1 % 5);
  scale.coordinator.min_mean_erases = 1.0;
  scale.coordinator.cooldown_rounds = static_cast<std::uint32_t>(r1 % 3);
  scale.records_per_round = 2048;
  const auto layer = (r1 % 2 == 0) ? sim::LayerKind::ftl : sim::LayerKind::nftl;
  wear::LevelerConfig leveler;
  leveler.k = static_cast<std::uint32_t>(r0 % 2);
  leveler.threshold = 4.0 + static_cast<double>(r1 % 6);
  leveler.rng_seed = sim::shard_seed(seed, 2);

  const std::uint64_t total_records = 16 * scale.records_per_round;
  const trace::Trace base = sim::make_array_base_trace(scale, layer);
  runner::SweepRunner runner(jobs);

  array::ChipArray arr(sim::make_array_config(scale, layer, leveler));
  array::GlobalLevelCoordinator coordinator(arr.chip_count(), scale.coordinator);
  RefArrayWear oracle(arr, scale.coordinator, leveler);
  oracle.attach(arr);

  trace::SegmentReplaySource source(base, scale.chip.segment_minutes * 60.0,
                                    scale.chip.seed ^ 0x1234);
  std::vector<trace::TraceRecord> buffer(scale.records_per_round);

  ArrayCheckResult out;
  std::uint64_t routed = 0;
  while (routed < total_records) {
    const std::size_t n = source.next_batch(buffer.data(), buffer.size());
    if (n == 0) break;
    arr.replay_round({buffer.data(), n}, runner, scale.chip.max_years, /*use_serial=*/false);
    routed += n;
    ++out.rounds;
    const array::Decision expected = oracle.expected_decision();
    const array::Decision actual = coordinator.evaluate_round(arr);
    if (std::string err = oracle.on_decision(expected, actual); !err.empty()) {
      out.passed = false;
      out.message = err;
      break;
    }
    if (std::string err = oracle.check(arr); !err.empty()) {
      out.passed = false;
      out.message = "round " + std::to_string(out.rounds - 1) + ": " + err;
      break;
    }
  }

  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (std::uint32_t c = 0; c < arr.chip_count(); ++c) {
    hash = fingerprint_result(hash, arr.chip_result(c));
  }
  for (const array::Decision& d : coordinator.log()) {
    hash = fnv1a(hash, d.round);
    hash = fnv1a(hash, static_cast<std::uint64_t>(d.migrate));
    hash = fnv1a(hash, (static_cast<std::uint64_t>(d.from_chip) << 32) | d.to_chip);
  }
  out.fingerprint = hash;
  out.migrations = coordinator.stats().migrations;
  oracle.detach(arr);
  return out;
}

}  // namespace swl::model
