#include "model/ref_dftl.hpp"

#include <sstream>

namespace swl::model {

RefDftl::RefDftl(Lba tpage_count)
    : resident_(tpage_count, 0),
      dirty_(tpage_count, 0),
      location_(tpage_count, kInvalidPpa) {}

void RefDftl::record_event_error(std::string message) {
  if (event_error_.empty()) event_error_ = std::move(message);
}

void RefDftl::on_fetch(Lba tvpn, bool from_flash) {
  if (tvpn >= resident_.size()) {
    record_event_error("fetch of out-of-range tvpn " + std::to_string(tvpn));
    return;
  }
  if (resident_[tvpn] != 0) {
    record_event_error("fetch of already-resident tvpn " + std::to_string(tvpn));
  }
  if (from_flash != location_[tvpn].valid()) {
    std::ostringstream os;
    os << "fetch of tvpn " << tvpn << " reported from_flash=" << from_flash
       << " but the model " << (location_[tvpn].valid() ? "knows" : "has no")
       << " flash version";
    record_event_error(os.str());
  }
  resident_[tvpn] = 1;
  dirty_[tvpn] = 0;
  ++resident_count_;
}

void RefDftl::on_evict(Lba tvpn) {
  if (tvpn >= resident_.size()) {
    record_event_error("evict of out-of-range tvpn " + std::to_string(tvpn));
    return;
  }
  if (resident_[tvpn] == 0) {
    record_event_error("evict of non-resident tvpn " + std::to_string(tvpn));
    return;
  }
  if (dirty_[tvpn] != 0) {
    record_event_error("evict of still-dirty tvpn " + std::to_string(tvpn) +
                       " (write-back skipped?)");
  }
  resident_[tvpn] = 0;
  dirty_[tvpn] = 0;
  --resident_count_;
}

void RefDftl::on_mark_dirty(Lba tvpn) {
  if (tvpn >= resident_.size()) {
    record_event_error("mark_dirty of out-of-range tvpn " + std::to_string(tvpn));
    return;
  }
  if (resident_[tvpn] == 0) {
    record_event_error("mark_dirty of non-resident tvpn " + std::to_string(tvpn));
    return;
  }
  dirty_[tvpn] = 1;
}

void RefDftl::on_tpage_program(Lba tvpn, Ppa where, dftl::TpageWrite cause) {
  if (tvpn >= resident_.size()) {
    record_event_error("tpage program of out-of-range tvpn " + std::to_string(tvpn));
    return;
  }
  if (!where.valid()) {
    record_event_error("tpage program of tvpn " + std::to_string(tvpn) +
                       " at an invalid address");
    return;
  }
  switch (cause) {
    case dftl::TpageWrite::writeback:
      if (resident_[tvpn] == 0) {
        record_event_error("writeback of non-resident tvpn " + std::to_string(tvpn));
      } else if (dirty_[tvpn] == 0) {
        record_event_error("writeback of already-clean tvpn " + std::to_string(tvpn));
      }
      dirty_[tvpn] = 0;
      break;
    case dftl::TpageWrite::gc_update:
      if (resident_[tvpn] != 0) {
        record_event_error("direct GC update of resident tvpn " + std::to_string(tvpn) +
                           " (must go through the CMT)");
      }
      break;
    case dftl::TpageWrite::gc_relocate:
      if (resident_[tvpn] != 0 && dirty_[tvpn] != 0) {
        record_event_error("GC relocation of dirty-resident tvpn " + std::to_string(tvpn) +
                           " (dirty pages must flush as writebacks)");
      }
      break;
    case dftl::TpageWrite::recovery:
      if (resident_[tvpn] != 0) {
        record_event_error("recovery rewrite of resident tvpn " + std::to_string(tvpn));
      }
      break;
  }
  location_[tvpn] = where;
}

std::string RefDftl::check(const dftl::Dftl& layer) const {
  if (!event_error_.empty()) return "dftl event error: " + event_error_;
  if (layer.tpage_count() != tpage_count()) {
    return "dftl model shape mismatch: layer has " + std::to_string(layer.tpage_count()) +
           " translation pages, model has " + std::to_string(tpage_count());
  }
  for (Lba tvpn = 0; tvpn < tpage_count(); ++tvpn) {
    const bool resident = layer.is_resident(tvpn);
    if (resident != (resident_[tvpn] != 0)) {
      std::ostringstream os;
      os << "tvpn " << tvpn << ": layer resident=" << resident << ", model says "
         << (resident_[tvpn] != 0);
      return os.str();
    }
    if (resident && layer.is_dirty(tvpn) != (dirty_[tvpn] != 0)) {
      std::ostringstream os;
      os << "tvpn " << tvpn << ": layer dirty=" << layer.is_dirty(tvpn) << ", model says "
         << (dirty_[tvpn] != 0);
      return os.str();
    }
    if (layer.tpage_location(tvpn) != location_[tvpn]) {
      std::ostringstream os;
      os << "tvpn " << tvpn << ": layer flash version at ("
         << layer.tpage_location(tvpn).block << "," << layer.tpage_location(tvpn).page
         << "), model expects (" << location_[tvpn].block << "," << location_[tvpn].page
         << ")";
      return os.str();
    }
  }
  if (layer.resident_count() != resident_count_) {
    return "resident count mismatch: layer " + std::to_string(layer.resident_count()) +
           ", model " + std::to_string(resident_count_);
  }
  return "";
}

void RefDftl::resync(const dftl::Dftl& layer) {
  const Lba n = layer.tpage_count();
  resident_.assign(n, 0);
  dirty_.assign(n, 0);
  location_.assign(n, kInvalidPpa);
  resident_count_ = 0;
  for (Lba tvpn = 0; tvpn < n; ++tvpn) {
    location_[tvpn] = layer.tpage_location(tvpn);
    if (layer.is_resident(tvpn)) {
      resident_[tvpn] = 1;
      dirty_[tvpn] = layer.is_dirty(tvpn) ? 1 : 0;
      ++resident_count_;
    }
  }
  event_error_.clear();
}

}  // namespace swl::model
