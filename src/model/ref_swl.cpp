#include "model/ref_swl.hpp"

#include <sstream>

#include "core/contracts.hpp"

namespace swl::model {

RefSwLeveler::RefSwLeveler(BlockIndex block_count, const wear::LevelerConfig& config)
    : block_count_(block_count),
      k_(config.k),
      flag_count_((static_cast<std::size_t>(block_count) + ((std::size_t{1} << config.k) - 1)) >>
                  config.k),
      threshold_(config.threshold),
      selection_(config.selection),
      rng_seed_(config.rng_seed),
      rng_(config.rng_seed),
      baseline_flags_(flag_count_, false) {
  SWL_REQUIRE(block_count_ > 0, "empty device");
  SWL_REQUIRE(flag_count_ > 0, "k leaves no BET flag");
}

void RefSwLeveler::on_chip_erase(BlockIndex block) {
  SWL_REQUIRE(block < block_count_, "erased block out of range");
  erase_log_.push_back(block);
}

std::vector<bool> RefSwLeveler::flags() const {
  std::vector<bool> f = baseline_flags_;
  for (const BlockIndex block : erase_log_) f[flag_of(block)] = true;
  return f;
}

std::uint64_t RefSwLeveler::fcnt() const {
  std::uint64_t count = 0;
  for (const bool set : flags()) count += set ? 1 : 0;
  return count;
}

double RefSwLeveler::unevenness() const {
  const std::uint64_t f = fcnt();
  if (f == 0) return 0.0;
  // Same expression as the production unevenness(); exact doubles on both
  // sides, so the comparison in check() can be equality, not tolerance.
  return static_cast<double>(ecnt()) / static_cast<double>(f);
}

bool RefSwLeveler::needs_leveling() const { return fcnt() > 0 && unevenness() >= threshold_; }

std::size_t RefSwLeveler::next_clear(const std::vector<bool>& f, std::size_t start) const {
  for (std::size_t step = 0; step < flag_count_; ++step) {
    const std::size_t flag = (start + step) % flag_count_;
    if (!f[flag]) return flag;
  }
  return flag_count_;
}

void RefSwLeveler::record_event_error(std::string message) {
  if (event_error_.empty()) event_error_ = std::move(message);
}

void RefSwLeveler::on_select(std::size_t flag) {
  const std::vector<bool> f = flags();
  std::size_t expected = 0;
  if (selection_ == wear::LevelerConfig::Selection::random) {
    expected = next_clear(f, rng_.below(flag_count_));
  } else {
    expected = next_clear(f, expected_findex_);
  }
  if (expected >= flag_count_) {
    record_event_error("SWL-Procedure selected a flag while the reference BET is full");
  } else if (flag != expected) {
    std::ostringstream os;
    os << "SWL-Procedure selected flag " << flag << ", the reference cyclic scan expects "
       << expected;
    record_event_error(os.str());
  } else if (f[flag]) {
    record_event_error("SWL-Procedure selected an already-set flag");
  }
  // Algorithm 1 step 12: the cursor resumes one past the selected set.
  expected_findex_ = (flag + 1) % flag_count_;
}

void RefSwLeveler::on_reset(std::size_t new_findex) {
  const std::size_t expected = rng_.below(flag_count_);
  if (new_findex != expected) {
    std::ostringstream os;
    os << "BET reset re-randomized findex to " << new_findex << ", the mirrored RNG expects "
       << expected;
    record_event_error(os.str());
  }
  // Steps 4–7: a new resetting interval — the raw log restarts empty.
  erase_log_.clear();
  baseline_flags_.assign(flag_count_, false);
  baseline_ecnt_ = 0;
  expected_findex_ = new_findex;
}

std::string RefSwLeveler::check(const wear::SwLeveler& leveler) const {
  if (!event_error_.empty()) return event_error_;
  std::ostringstream os;
  if (leveler.ecnt() != ecnt()) {
    os << "ecnt: production " << leveler.ecnt() << " != reference " << ecnt()
       << " (recomputed from " << erase_log_.size() << " logged erases)";
    return os.str();
  }
  if (leveler.fcnt() != fcnt()) {
    os << "fcnt: production " << leveler.fcnt() << " != reference " << fcnt();
    return os.str();
  }
  const std::vector<bool> f = flags();
  for (std::size_t flag = 0; flag < flag_count_; ++flag) {
    if (leveler.bet().test_flag(flag) != f[flag]) {
      os << "BET flag " << flag << ": production " << leveler.bet().test_flag(flag)
         << " != reference " << f[flag];
      return os.str();
    }
  }
  if (leveler.findex() != expected_findex_) {
    os << "findex: production " << leveler.findex() << " != reference " << expected_findex_;
    return os.str();
  }
  if (leveler.unevenness() != unevenness()) {
    os << "unevenness: production " << leveler.unevenness() << " != reference " << unevenness();
    return os.str();
  }
  if (leveler.needs_leveling() != needs_leveling()) {
    os << "needs_leveling: production " << leveler.needs_leveling() << " != reference "
       << needs_leveling();
    return os.str();
  }
  return {};
}

void RefSwLeveler::resync(const wear::SwLeveler& leveler) {
  SWL_REQUIRE(leveler.bet().flag_count() == flag_count_ && leveler.bet().k() == k_,
              "resync against a leveler of a different shape");
  SWL_REQUIRE(leveler.findex() < flag_count_, "resync with an out-of-range findex");
  erase_log_.clear();
  baseline_ecnt_ = leveler.ecnt();
  baseline_flags_.assign(flag_count_, false);
  for (std::size_t flag = 0; flag < flag_count_; ++flag) {
    baseline_flags_[flag] = leveler.bet().test_flag(flag);
  }
  expected_findex_ = leveler.findex();
  // A freshly constructed leveler restarts its private RNG from the config
  // seed; an in-range restored findex draws nothing from it.
  rng_ = Rng(rng_seed_);
  event_error_.clear();
}

}  // namespace swl::model
