#include "model/fuzz.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <utility>

#include "core/contracts.hpp"
#include "core/rng.hpp"
#include "dftl/dftl.hpp"
#include "fault/crash_injector.hpp"
#include "model/ref_dftl.hpp"
#include "model/ref_store.hpp"
#include "model/ref_swl.hpp"
#include "nand/power_loss.hpp"

namespace swl::model {

namespace {

/// A power-loss hook that never cuts power. Attaching it flips the chip's
/// fast_media() off, forcing stack A's write_record through the virtual slow
/// path — the cheapest way to toggle fast-path dispatch mid-run.
class BenignHook final : public nand::PowerLossHook {
 public:
  nand::CrashDecision on_operation(nand::CrashOp /*op*/) override {
    return nand::CrashDecision::proceed;
  }
};

/// FNV-1a, the same digest recovery.cpp uses for state fingerprints.
class Fnv {
 public:
  void add(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFF;
      hash_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

struct Stack {
  const char* id = "?";
  bool fast = false;  // drive through write_record / read_record
  std::unique_ptr<nand::NandChip> chip;
  std::unique_ptr<tl::TranslationLayer> layer;
  wear::SwLeveler* leveler = nullptr;  // owned by layer
  wear::MemorySnapshotStore store;
  std::optional<wear::LevelerPersistence> persistence;
  BenignHook benign;
  bool benign_attached = false;
  std::vector<std::size_t> extra_observers;
  std::uint64_t extra_observer_erases = 0;
  /// gc+swl erases attributed by layer incarnations already torn down.
  std::uint64_t retired_layer_erases = 0;
  std::optional<RefStore> ref_store;
  std::optional<RefWear> ref_wear;
  std::optional<RefSwLeveler> ref_swl;
  std::optional<RefDftl> ref_dftl;
};

class Runner {
 public:
  explicit Runner(const FuzzSchedule& schedule) : sched_(schedule) {
    a_.id = "stack A (fast)";
    a_.fast = true;
    b_.id = "stack B (slow)";
    b_.fast = false;
    build_stack(a_);
    build_stack(b_);
  }

  FuzzOutcome run(const FuzzOptions& options) {
    FuzzOutcome out;
    bool injected = false;
    for (std::size_t i = 0; i < sched_.steps.size(); ++i) {
      std::string msg = exec_step(sched_.steps[i]);
      if (msg.empty() && options.inject == FuzzOptions::Inject::skip_bet_update && !injected &&
          i >= options.inject_at_step && a_.leveler != nullptr && a_.leveler->ecnt() > 0) {
        a_.leveler->restore_state(a_.leveler->ecnt() - 1, a_.leveler->findex(),
                                  a_.leveler->bet().bits().words());
        injected = true;
      }
      if (msg.empty() && options.inject == FuzzOptions::Inject::skip_cmt_writeback &&
          !injected && i >= options.inject_at_step) {
        if (auto* d = dynamic_cast<dftl::Dftl*>(a_.layer.get())) {
          // Waits for a dirty CMT slot, exactly like skip_bet_update waits
          // for the first counted erase.
          injected = d->debug_drop_first_dirty();
        }
      }
      if (msg.empty()) msg = check_all();
      if (!msg.empty()) {
        out.ok = false;
        out.failing_step = i;
        out.message = std::move(msg);
        break;
      }
    }
    out.fingerprint = fingerprint();
    out.fast_path_writes = a_.layer->counters().fast_path_writes;
    return out;
  }

 private:
  [[nodiscard]] ftl::FtlConfig ftl_config(const Stack& s) const {
    ftl::FtlConfig cfg;
    cfg.lba_count = sched_.params.lba_count;
    cfg.gc_cost_weight = sched_.params.gc_cost_weight;
    cfg.victim_policy = sched_.params.victim_policy;
    // Stack B optionally runs the reference victim scans against A's
    // victim-index selection — a live equivalence check of tl::VictimIndex
    // under media errors, remounts and leveler interference.
    cfg.reference_victim_scan = !s.fast && sched_.params.reference_scan_b;
    return cfg;
  }

  [[nodiscard]] nftl::NftlConfig nftl_config(const Stack& s) const {
    nftl::NftlConfig cfg;
    cfg.vba_count = sched_.params.vba_count;
    cfg.gc_cost_weight = sched_.params.gc_cost_weight;
    cfg.victim_policy = sched_.params.victim_policy;
    cfg.reference_victim_scan = !s.fast && sched_.params.reference_scan_b;
    return cfg;
  }

  [[nodiscard]] dftl::DftlConfig dftl_config(const Stack& s) const {
    dftl::DftlConfig cfg;
    cfg.lba_count = sched_.params.lba_count;
    cfg.lbas_per_tpage = sched_.params.dftl_lbas_per_tpage;
    cfg.cmt_capacity = sched_.params.dftl_cmt_capacity;
    cfg.writeback_batch = sched_.params.dftl_writeback_batch;
    cfg.gc_cost_weight = sched_.params.gc_cost_weight;
    cfg.reference_victim_scan = !s.fast && sched_.params.reference_scan_b;
    return cfg;
  }

  void build_stack(Stack& s) {
    const FuzzParams& p = sched_.params;
    nand::NandConfig cfg;
    cfg.geometry = FlashGeometry{p.block_count, p.pages_per_block, p.page_size_bytes};
    // Schedules hammer tiny devices; a huge endurance keeps wear_ratio finite
    // (endurance 0 would make the failure probability NaN) and blocks alive.
    cfg.timing.endurance = 1'000'000'000;
    cfg.failures.program_fail_p = p.program_fail_p;
    cfg.failures.seed = p.failure_seed;
    // DFTL stores translation pages as byte payloads.
    cfg.store_payload_bytes = p.layer == sim::LayerKind::dftl;
    s.chip = std::make_unique<nand::NandChip>(cfg, nullptr);
    // Model observers are chip-level: they survive remounts and therefore
    // see every erase any layer incarnation ever performs.
    s.ref_wear.emplace(p.block_count);
    // The chip and both model observers live in the same Stack, which dies
    // with this Runner — the registration can never dangle, and tearing it
    // down early would blind the oracles to the final erases.
    (void)s.chip->add_erase_observer(  // flash-lint: allow(observer-lifetime)
        [rw = &*s.ref_wear](BlockIndex block, std::uint32_t) { rw->on_chip_erase(block); });
    if (p.with_leveler) {
      s.ref_swl.emplace(p.block_count, p.leveler);
      (void)s.chip->add_erase_observer(  // flash-lint: allow(observer-lifetime)
          [rs = &*s.ref_swl](BlockIndex block, std::uint32_t) { rs->on_chip_erase(block); });
    }
    mount_stack(s, /*mounted=*/false);
    s.ref_store.emplace(s.layer->lba_count());
  }

  /// (Re)creates the firmware half of a stack: translation layer, leveler
  /// (restored from the snapshot store when one validates), persistence.
  void mount_stack(Stack& s, bool mounted) {
    const FuzzParams& p = sched_.params;
    s.layer =
        sim::make_layer(p.layer, *s.chip, ftl_config(s), nftl_config(s), dftl_config(s), mounted);
    if (p.layer == sim::LayerKind::dftl) {
      // The mapping-cache oracle replays trace-sink events between mounts;
      // mount events are unobserved (the sink attaches here), so each mount
      // re-baselines the model from introspection.
      auto& d = static_cast<dftl::Dftl&>(*s.layer);
      if (!s.ref_dftl.has_value()) s.ref_dftl.emplace(d.tpage_count());
      d.set_trace_sink(&*s.ref_dftl);
      s.ref_dftl->resync(d);
    }
    s.leveler = nullptr;
    if (p.with_leveler) {
      auto lev = std::make_unique<wear::SwLeveler>(p.block_count, p.leveler);
      s.leveler = lev.get();
      // A fresh persistence object resumes the slot sequence from the store,
      // exactly like firmware re-initializing after a reboot.
      s.persistence.emplace(s.store);
      // Benign discard: a corrupt or absent snapshot means "start a fresh
      // interval", which load() already leaves the leveler set up for.
      if (mounted) discard_status(s.persistence->load(*lev));
      lev->set_trace_sink(&*s.ref_swl);
      s.layer->attach_leveler(std::move(lev));
      s.ref_swl->resync(*s.leveler);
    }
  }

  /// Firmware death + reboot: tear the layer down, drop the chip's logical
  /// page state, mount-scan it back and reload the leveler snapshot.
  void remount_stack(Stack& s) {
    s.retired_layer_erases += s.layer->counters().total_erases();
    s.layer.reset();  // deregisters the layer's and leveler's observers
    s.chip->forget_logical_state();
    mount_stack(s, /*mounted=*/true);
  }

  std::string exec_step(const FuzzStep& step) {
    switch (step.kind) {
      case StepKind::write_burst: {
        Rng rng(step.a);
        const Lba lbas = a_.layer->lba_count();
        const std::uint64_t pct = std::clamp<std::uint64_t>(step.c, 1, 100);
        const Lba span = std::max<Lba>(1, static_cast<Lba>(lbas * pct / 100));
        for (std::uint64_t i = 0; i < step.b; ++i) {
          std::string msg = write_one(static_cast<Lba>(rng.below(span)), next_token_++);
          if (!msg.empty()) return msg;
        }
        return {};
      }
      case StepKind::read_burst: {
        Rng rng(step.a);
        const Lba lbas = a_.layer->lba_count();
        for (std::uint64_t i = 0; i < step.b; ++i) {
          std::string msg = read_one(static_cast<Lba>(rng.below(lbas)));
          if (!msg.empty()) return msg;
        }
        return {};
      }
      case StepKind::single_write:
        return write_one(static_cast<Lba>(step.a % a_.layer->lba_count()), next_token_++);
      case StepKind::single_read:
        return read_one(static_cast<Lba>(step.a % a_.layer->lba_count()));
      case StepKind::hook_attach:
        for (Stack* s : {&a_, &b_}) {
          s->benign_attached = true;
          s->chip->set_power_loss_hook(&s->benign);
        }
        return {};
      case StepKind::hook_detach:
        for (Stack* s : {&a_, &b_}) {
          s->benign_attached = false;
          s->chip->set_power_loss_hook(nullptr);
        }
        return {};
      case StepKind::observer_attach:
        // Observer churn is the behavior under test here (tokens are redeemed
        // by observer_detach steps or die with the owning Stack).
        for (Stack* s : {&a_, &b_}) {
          s->extra_observers.push_back(
              s->chip->add_erase_observer(  // flash-lint: allow(observer-lifetime)
                  [count = &s->extra_observer_erases](BlockIndex, std::uint32_t) { ++*count; }));
        }
        return {};
      case StepKind::observer_detach:
        for (Stack* s : {&a_, &b_}) {
          if (s->extra_observers.empty()) continue;
          s->chip->remove_erase_observer(s->extra_observers.back());
          s->extra_observers.pop_back();
        }
        return {};
      case StepKind::snapshot_save:
        return save_snapshots();
      case StepKind::power_cycle: {
        std::string msg = save_snapshots();  // clean shutdown persists the BET
        if (!msg.empty()) return msg;
        remount_stack(a_);
        remount_stack(b_);
        return {};
      }
      case StepKind::crash_burst:
        return crash_burst(step);
    }
    return "unknown step kind";
  }

  std::string save_snapshots() {
    if (a_.leveler == nullptr) return {};
    const Status sa = a_.persistence->save(*a_.leveler);
    const Status sb = b_.persistence->save(*b_.leveler);
    if (sa != Status::ok || sb != Status::ok) {
      return "BET snapshot save failed on the in-memory store";
    }
    return {};
  }

  std::string write_one(Lba lba, std::uint64_t token) {
    a_.ref_store->begin_write(lba, token);
    b_.ref_store->begin_write(lba, token);
    const Status sa = a_.layer->write_record(lba, token);
    const Status sb = b_.layer->write(lba, token);
    if (sa != sb) {
      std::ostringstream os;
      os << "write status diverged at LBA " << lba << ": fast path " << sa << ", slow path "
         << sb;
      // Leave the reference stores resolved so teardown stays clean.
      a_.ref_store->fail_write();
      b_.ref_store->fail_write();
      return os.str();
    }
    if (sa == Status::ok) {
      a_.ref_store->ack_write();
      b_.ref_store->ack_write();
    } else {
      a_.ref_store->fail_write();
      b_.ref_store->fail_write();
    }
    return {};
  }

  std::string read_one(Lba lba) {
    std::uint64_t ta = 0;
    std::uint64_t tb = 0;
    const Status sa = a_.layer->read_record(lba, &ta);
    const Status sb = b_.layer->read(lba, &tb);
    std::ostringstream os;
    if (sa != sb || (sa == Status::ok && ta != tb)) {
      os << "read diverged at LBA " << lba << ": fast path " << sa << "/" << ta
         << ", slow path " << sb << "/" << tb;
      return os.str();
    }
    const std::uint64_t want = a_.ref_store->tokens()[lba];
    if (want == 0 ? sa != Status::lba_not_mapped : (sa != Status::ok || ta != want)) {
      os << "read of LBA " << lba << " returned " << sa << "/" << ta << ", the reference holds "
         << want;
      return os.str();
    }
    return {};
  }

  std::string crash_burst(const FuzzStep& step) {
    Rng rng(step.a);
    const Lba lbas = a_.layer->lba_count();
    fault::CrashInjector inj_a(step.c);
    fault::CrashInjector inj_b(step.c);
    a_.chip->set_power_loss_hook(&inj_a);
    b_.chip->set_power_loss_hook(&inj_b);
    bool crashed = false;
    std::string msg;
    for (std::uint64_t i = 0; i < step.b && msg.empty() && !crashed; ++i) {
      const Lba lba = static_cast<Lba>(rng.below(lbas));
      const std::uint64_t token = next_token_++;
      a_.ref_store->begin_write(lba, token);
      b_.ref_store->begin_write(lba, token);
      Status sa = Status::ok;
      Status sb = Status::ok;
      bool ca = false;
      bool cb = false;
      try {
        sa = a_.layer->write_record(lba, token);
      } catch (const nand::PowerLossError&) {
        ca = true;
      }
      try {
        sb = b_.layer->write(lba, token);
      } catch (const nand::PowerLossError&) {
        cb = true;
      }
      if (ca != cb) {
        std::ostringstream os;
        os << "power was cut in only one stack at burst write " << i << " (fast path "
           << (ca ? "crashed" : "survived") << ", slow path " << (cb ? "crashed" : "survived")
           << ")";
        msg = os.str();
      } else if (ca) {
        crashed = true;  // both stacks died at the same operation; recover below
      } else if (sa != sb) {
        std::ostringstream os;
        os << "write status diverged at LBA " << lba << ": fast path " << sa << ", slow path "
           << sb;
        msg = os.str();
      } else if (sa == Status::ok) {
        a_.ref_store->ack_write();
        b_.ref_store->ack_write();
      } else {
        a_.ref_store->fail_write();
        b_.ref_store->fail_write();
      }
    }
    // Drop the injectors before anything else touches the chips.
    a_.chip->set_power_loss_hook(a_.benign_attached ? &a_.benign : nullptr);
    b_.chip->set_power_loss_hook(b_.benign_attached ? &b_.benign : nullptr);
    if (!msg.empty()) {
      a_.ref_store->fail_write();
      b_.ref_store->fail_write();
      return msg;
    }
    if (!crashed) return {};
    remount_stack(a_);
    remount_stack(b_);
    std::string ra = a_.ref_store->resolve_after_crash(*a_.layer);
    if (!ra.empty()) return std::string(a_.id) + ": " + ra;
    std::string rb = b_.ref_store->resolve_after_crash(*b_.layer);
    if (!rb.empty()) return std::string(b_.id) + ": " + rb;
    return {};
  }

  std::string check_stack(Stack& s) {
    if (s.leveler != nullptr) {
      std::string msg = s.ref_swl->check(*s.leveler);
      if (!msg.empty()) return std::string(s.id) + " vs SWL model: " + msg;
    }
    if (s.ref_dftl.has_value()) {
      std::string msg = s.ref_dftl->check(static_cast<const dftl::Dftl&>(*s.layer));
      if (!msg.empty()) return std::string(s.id) + " vs DFTL model: " + msg;
    }
    {
      std::string msg = s.ref_wear->check(
          *s.chip, s.layer->counters().total_erases() + s.retired_layer_erases);
      if (!msg.empty()) return std::string(s.id) + " vs wear model: " + msg;
    }
    {
      std::string msg = s.ref_store->check_contents(*s.layer, s.fast);
      if (!msg.empty()) return std::string(s.id) + " vs contents model: " + msg;
    }
    try {
      s.layer->check_invariants();
    } catch (const std::exception& e) {
      return std::string(s.id) + " invariant violation: " + e.what();
    }
    {
      std::string msg = check_mapping(*s.layer);
      if (!msg.empty()) return std::string(s.id) + " mapping model: " + msg;
    }
    return {};
  }

  std::string check_pair() {
    std::ostringstream os;
    const auto& ca = a_.chip->counters();
    const auto& cb = b_.chip->counters();
    if (ca.reads != cb.reads || ca.programs != cb.programs || ca.erases != cb.erases ||
        ca.program_failures != cb.program_failures || ca.erase_failures != cb.erase_failures) {
      os << "chip counters diverged (fast reads/programs/erases " << ca.reads << "/"
         << ca.programs << "/" << ca.erases << ", slow " << cb.reads << "/" << cb.programs << "/"
         << cb.erases << ")";
      return os.str();
    }
    if (a_.chip->erase_counts() != b_.chip->erase_counts()) {
      return "per-block erase counts diverged between the fast and slow stacks";
    }
    const auto& ta = a_.layer->counters();
    const auto& tb = b_.layer->counters();
    if (ta.host_writes != tb.host_writes || ta.host_reads != tb.host_reads ||
        ta.gc_erases != tb.gc_erases || ta.swl_erases != tb.swl_erases ||
        ta.gc_live_copies != tb.gc_live_copies || ta.swl_live_copies != tb.swl_live_copies) {
      os << "translation-layer counters diverged (fast gc/swl erases " << ta.gc_erases << "/"
         << ta.swl_erases << ", slow " << tb.gc_erases << "/" << tb.swl_erases << ")";
      return os.str();
    }
    if (a_.leveler != nullptr) {
      const wear::SwLeveler& la = *a_.leveler;
      const wear::SwLeveler& lb = *b_.leveler;
      if (la.ecnt() != lb.ecnt() || la.fcnt() != lb.fcnt() || la.findex() != lb.findex() ||
          la.bet().bits().words() != lb.bet().bits().words()) {
        os << "leveler state diverged (fast ecnt/fcnt/findex " << la.ecnt() << "/" << la.fcnt()
           << "/" << la.findex() << ", slow " << lb.ecnt() << "/" << lb.fcnt() << "/"
           << lb.findex() << ")";
        return os.str();
      }
      const wear::LevelerStats& sa = la.stats();
      const wear::LevelerStats& sb = lb.stats();
      if (sa.collections_requested != sb.collections_requested ||
          sa.bet_resets != sb.bet_resets || sa.activations != sb.activations ||
          sa.stalls != sb.stalls) {
        return "leveler statistics diverged between the fast and slow stacks";
      }
      for (unsigned slot = 0; slot < wear::SnapshotStore::kSlots; ++slot) {
        if (a_.store.read_slot(slot) != b_.store.read_slot(slot)) {
          os << "BET snapshot slot " << slot << " bytes diverged";
          return os.str();
        }
      }
    }
    if (a_.extra_observer_erases != b_.extra_observer_erases) {
      os << "mid-run erase observers counted " << a_.extra_observer_erases << " (fast) vs "
         << b_.extra_observer_erases << " (slow) erases";
      return os.str();
    }
    return {};
  }

  std::string check_all() {
    std::string msg = check_stack(a_);
    if (msg.empty()) msg = check_stack(b_);
    if (msg.empty()) msg = check_pair();
    return msg;
  }

  [[nodiscard]] std::uint64_t fingerprint() const {
    Fnv fnv;
    for (const std::uint32_t c : a_.chip->erase_counts()) fnv.add(c);
    for (const std::uint64_t t : a_.ref_store->tokens()) fnv.add(t);
    const auto& cc = a_.chip->counters();
    fnv.add(cc.reads);
    fnv.add(cc.programs);
    fnv.add(cc.erases);
    fnv.add(cc.program_failures);
    const auto& tc = a_.layer->counters();
    fnv.add(tc.host_writes);
    fnv.add(tc.host_reads);
    fnv.add(tc.gc_erases);
    fnv.add(tc.swl_erases);
    if (a_.leveler != nullptr) {
      fnv.add(a_.leveler->ecnt());
      fnv.add(a_.leveler->fcnt());
      fnv.add(a_.leveler->findex());
      for (const std::uint64_t w : a_.leveler->bet().bits().words()) fnv.add(w);
    }
    return fnv.value();
  }

  FuzzSchedule sched_;
  Stack a_;
  Stack b_;
  std::uint64_t next_token_ = 1;  // 0 is the reference store's "never written"
};

}  // namespace

std::string_view to_string(StepKind k) noexcept {
  switch (k) {
    case StepKind::write_burst:
      return "write_burst";
    case StepKind::read_burst:
      return "read_burst";
    case StepKind::single_write:
      return "single_write";
    case StepKind::single_read:
      return "single_read";
    case StepKind::hook_attach:
      return "hook_attach";
    case StepKind::hook_detach:
      return "hook_detach";
    case StepKind::observer_attach:
      return "observer_attach";
    case StepKind::observer_detach:
      return "observer_detach";
    case StepKind::snapshot_save:
      return "snapshot_save";
    case StepKind::power_cycle:
      return "power_cycle";
    case StepKind::crash_burst:
      return "crash_burst";
  }
  return "unknown";
}

FuzzOutcome run_schedule(const FuzzSchedule& schedule, const FuzzOptions& options) {
  Runner runner(schedule);
  return runner.run(options);
}

FuzzSchedule generate_schedule(std::uint64_t seed, std::optional<sim::LayerKind> force_layer) {
  Rng rng(seed);
  FuzzSchedule s;
  FuzzParams& p = s.params;
  if (force_layer.has_value()) {
    p.layer = *force_layer;
  } else {
    constexpr std::array<sim::LayerKind, 3> kLayers{
        sim::LayerKind::ftl, sim::LayerKind::nftl, sim::LayerKind::dftl};
    p.layer = kLayers[rng.below(kLayers.size())];
  }
  p.block_count = static_cast<BlockIndex>(12 + rng.below(37));  // 12..48
  constexpr std::array<PageIndex, 3> kPages{4, 8, 16};
  p.pages_per_block = kPages[rng.below(kPages.size())];
  p.page_size_bytes = 512;
  p.with_leveler = rng.chance(0.85);
  std::uint32_t max_k = 0;
  while ((BlockIndex{1} << (max_k + 1)) < p.block_count) ++max_k;
  ++max_k;  // the single-flag mode: 2^k >= block_count
  p.leveler.k = static_cast<std::uint32_t>(rng.below(max_k + 1));
  constexpr std::array<double, 7> kThresholds{1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 200.0};
  p.leveler.threshold = kThresholds[rng.below(kThresholds.size())];
  p.leveler.rng_seed = rng.next();
  p.leveler.selection = rng.chance(0.8) ? wear::LevelerConfig::Selection::cyclic_scan
                                        : wear::LevelerConfig::Selection::random;
  p.victim_policy =
      rng.chance(0.75) ? tl::VictimPolicy::greedy_cyclic : tl::VictimPolicy::cost_benefit_age;
  constexpr std::array<double, 4> kWeights{1.0, 0.5, 2.0, 0.25};
  p.gc_cost_weight = kWeights[rng.below(kWeights.size())];
  const std::uint64_t pages = static_cast<std::uint64_t>(p.block_count) * p.pages_per_block;
  Lba lba_count = 0;
  if (p.layer == sim::LayerKind::ftl) {
    // 60–90% utilization, always leaving at least two blocks of slack.
    const std::uint64_t frac = 60 + rng.below(31);
    const std::uint64_t cap = pages - 2ULL * p.pages_per_block;
    p.lba_count = static_cast<Lba>(std::clamp<std::uint64_t>(pages * frac / 100, 1, cap));
    lba_count = p.lba_count;
    p.reference_scan_b = rng.chance(0.5);
  } else if (p.layer == sim::LayerKind::nftl) {
    const std::uint64_t frac = 55 + rng.below(31);
    p.vba_count = static_cast<Vba>(
        std::clamp<std::uint64_t>(p.block_count * frac / 100, 1, p.block_count - 3ULL));
    lba_count = static_cast<Lba>(p.vba_count * p.pages_per_block);
    p.reference_scan_b = rng.chance(0.5);
  } else {
    // DFTL: tiny translation pages so the schedule actually churns the CMT,
    // and small capacities so evictions and write-back batching fire.
    constexpr std::array<std::uint32_t, 3> kTpageSizes{4, 8, 16};
    p.dftl_lbas_per_tpage =
        rng.chance(0.2) ? 0 : kTpageSizes[rng.below(kTpageSizes.size())];
    constexpr std::array<std::uint32_t, 4> kCmt{1, 2, 4, 0};
    p.dftl_cmt_capacity = kCmt[rng.below(kCmt.size())];
    constexpr std::array<std::uint32_t, 3> kBatch{1, 2, 4};
    p.dftl_writeback_batch = kBatch[rng.below(kBatch.size())];
    // 55–85% of the data budget; every R data pages need one translation
    // page on top, plus the default 4-block reserve (DftlConfig REQUIREs
    // lba_count + tpage_count + reserve <= page_count).
    const std::uint64_t r =
        p.dftl_lbas_per_tpage == 0 ? p.page_size_bytes / 4 : p.dftl_lbas_per_tpage;
    const std::uint64_t reserve = 4ULL * p.pages_per_block;
    const std::uint64_t frac = 55 + rng.below(31);
    std::uint64_t cand =
        std::max<std::uint64_t>(1, (pages - reserve) * r / (r + 1) * frac / 100);
    while (cand > 1 && cand + (cand + r - 1) / r + reserve > pages) --cand;
    p.lba_count = static_cast<Lba>(cand);
    lba_count = p.lba_count;
    p.reference_scan_b = rng.chance(0.5);
  }
  if (rng.chance(0.15)) {
    p.program_fail_p = 0.005 + rng.uniform() * 0.015;
    p.failure_seed = rng.next();
  }

  const std::uint64_t step_count = 20 + rng.below(181);  // 20..200
  s.steps.reserve(step_count);
  constexpr std::array<PageIndex, 4> kSpans{100, 50, 25, 10};
  for (std::uint64_t i = 0; i < step_count; ++i) {
    FuzzStep step;
    const std::uint64_t roll = rng.below(100);
    if (roll < 40) {
      step.kind = StepKind::write_burst;
      step.a = rng.next();
      step.b = 16 + rng.below(185);
      step.c = kSpans[rng.below(kSpans.size())];
    } else if (roll < 52) {
      step.kind = StepKind::read_burst;
      step.a = rng.next();
      step.b = 8 + rng.below(57);
    } else if (roll < 58) {
      step.kind = StepKind::single_write;
      step.a = rng.below(lba_count);
    } else if (roll < 64) {
      step.kind = StepKind::single_read;
      step.a = rng.below(lba_count);
    } else if (roll < 72) {
      step.kind = StepKind::snapshot_save;
    } else if (roll < 78) {
      step.kind = rng.chance(0.5) ? StepKind::hook_attach : StepKind::hook_detach;
    } else if (roll < 84) {
      step.kind = rng.chance(0.5) ? StepKind::observer_attach : StepKind::observer_detach;
    } else if (roll < 90) {
      step.kind = StepKind::power_cycle;
    } else {
      step.kind = StepKind::crash_burst;
      step.a = rng.next();
      step.b = 12 + rng.below(109);
      // Persistent ops per write vary with GC; spread crash points from
      // "immediately" to "past the whole burst" (no crash).
      step.c = rng.below(3 * step.b + 4);
    }
    s.steps.push_back(step);
  }
  return s;
}

namespace {

[[nodiscard]] std::string format_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

[[nodiscard]] bool parse_step_kind(const std::string& name, StepKind* out) {
  constexpr std::array<StepKind, 11> kAll{
      StepKind::write_burst,  StepKind::read_burst,      StepKind::single_write,
      StepKind::single_read,  StepKind::hook_attach,     StepKind::hook_detach,
      StepKind::observer_attach, StepKind::observer_detach, StepKind::snapshot_save,
      StepKind::power_cycle,  StepKind::crash_burst,
  };
  for (const StepKind k : kAll) {
    if (name == to_string(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string serialize(const FuzzSchedule& schedule) {
  const FuzzParams& p = schedule.params;
  std::ostringstream os;
  os << "swl-fuzz-schedule v1\n";
  os << "layer "
     << (p.layer == sim::LayerKind::ftl ? "ftl"
                                        : (p.layer == sim::LayerKind::nftl ? "nftl" : "dftl"))
     << "\n";
  os << "blocks " << p.block_count << "\n";
  os << "pages " << p.pages_per_block << "\n";
  os << "page_size " << p.page_size_bytes << "\n";
  os << "leveler " << (p.with_leveler ? 1 : 0) << "\n";
  os << "k " << p.leveler.k << "\n";
  os << "threshold " << format_double(p.leveler.threshold) << "\n";
  os << "swl_seed " << p.leveler.rng_seed << "\n";
  os << "selection "
     << (p.leveler.selection == wear::LevelerConfig::Selection::cyclic_scan ? "cyclic" : "random")
     << "\n";
  os << "victim " << (p.victim_policy == tl::VictimPolicy::greedy_cyclic ? "greedy" : "cba")
     << "\n";
  os << "weight " << format_double(p.gc_cost_weight) << "\n";
  os << "lba_count " << p.lba_count << "\n";
  os << "vba_count " << p.vba_count << "\n";
  os << "dftl_tpage " << p.dftl_lbas_per_tpage << "\n";
  os << "dftl_cmt " << p.dftl_cmt_capacity << "\n";
  os << "dftl_batch " << p.dftl_writeback_batch << "\n";
  os << "reference_scan_b " << (p.reference_scan_b ? 1 : 0) << "\n";
  os << "program_fail_p " << format_double(p.program_fail_p) << "\n";
  os << "failure_seed " << p.failure_seed << "\n";
  os << "steps " << schedule.steps.size() << "\n";
  for (const FuzzStep& step : schedule.steps) {
    os << to_string(step.kind) << " " << step.a << " " << step.b << " " << step.c << "\n";
  }
  return os.str();
}

bool deserialize(const std::string& text, FuzzSchedule* out, std::string* error) {
  SWL_REQUIRE(out != nullptr && error != nullptr, "null output");
  const auto fail = [&](const std::string& why) {
    *error = why;
    return false;
  };
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "swl-fuzz-schedule v1") {
    return fail("missing \"swl-fuzz-schedule v1\" header");
  }
  FuzzSchedule s;
  FuzzParams& p = s.params;
  std::uint64_t step_count = 0;
  bool saw_steps = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "layer") {
      std::string v;
      ls >> v;
      if (v == "ftl") {
        p.layer = sim::LayerKind::ftl;
      } else if (v == "nftl") {
        p.layer = sim::LayerKind::nftl;
      } else if (v == "dftl") {
        p.layer = sim::LayerKind::dftl;
      } else {
        return fail("unknown layer \"" + v + "\"");
      }
    } else if (key == "blocks") {
      ls >> p.block_count;
    } else if (key == "pages") {
      ls >> p.pages_per_block;
    } else if (key == "page_size") {
      ls >> p.page_size_bytes;
    } else if (key == "leveler") {
      int v = 0;
      ls >> v;
      p.with_leveler = v != 0;
    } else if (key == "k") {
      ls >> p.leveler.k;
    } else if (key == "threshold") {
      ls >> p.leveler.threshold;
    } else if (key == "swl_seed") {
      ls >> p.leveler.rng_seed;
    } else if (key == "selection") {
      std::string v;
      ls >> v;
      if (v == "cyclic") {
        p.leveler.selection = wear::LevelerConfig::Selection::cyclic_scan;
      } else if (v == "random") {
        p.leveler.selection = wear::LevelerConfig::Selection::random;
      } else {
        return fail("unknown selection \"" + v + "\"");
      }
    } else if (key == "victim") {
      std::string v;
      ls >> v;
      if (v == "greedy") {
        p.victim_policy = tl::VictimPolicy::greedy_cyclic;
      } else if (v == "cba") {
        p.victim_policy = tl::VictimPolicy::cost_benefit_age;
      } else {
        return fail("unknown victim policy \"" + v + "\"");
      }
    } else if (key == "weight") {
      ls >> p.gc_cost_weight;
    } else if (key == "lba_count") {
      ls >> p.lba_count;
    } else if (key == "vba_count") {
      ls >> p.vba_count;
    } else if (key == "dftl_tpage") {
      ls >> p.dftl_lbas_per_tpage;
    } else if (key == "dftl_cmt") {
      ls >> p.dftl_cmt_capacity;
    } else if (key == "dftl_batch") {
      ls >> p.dftl_writeback_batch;
    } else if (key == "reference_scan_b") {
      int v = 0;
      ls >> v;
      p.reference_scan_b = v != 0;
    } else if (key == "program_fail_p") {
      ls >> p.program_fail_p;
    } else if (key == "failure_seed") {
      ls >> p.failure_seed;
    } else if (key == "steps") {
      ls >> step_count;
      if (ls.fail()) return fail("unreadable step count");
      saw_steps = true;
      break;
    } else {
      return fail("unknown key \"" + key + "\"");
    }
    if (ls.fail()) return fail("unreadable value for key \"" + key + "\"");
  }
  if (!saw_steps) return fail("missing \"steps <n>\" line");
  s.steps.reserve(step_count);
  for (std::uint64_t i = 0; i < step_count; ++i) {
    if (!std::getline(is, line)) return fail("fewer step lines than the declared count");
    std::istringstream ls(line);
    std::string name;
    FuzzStep step;
    ls >> name >> step.a >> step.b >> step.c;
    if (ls.fail() || !parse_step_kind(name, &step.kind)) {
      return fail("unreadable step line: \"" + line + "\"");
    }
    s.steps.push_back(step);
  }
  if (s.params.block_count == 0 || s.params.pages_per_block == 0 ||
      s.params.page_size_bytes == 0) {
    return fail("schedule declares an empty geometry");
  }
  *out = std::move(s);
  error->clear();
  return true;
}

MinimizeResult minimize(const FuzzSchedule& schedule, const FuzzOptions& options,
                        std::size_t max_runs) {
  MinimizeResult res;
  res.schedule = schedule;
  const auto attempt = [&](const FuzzSchedule& cand) {
    ++res.runs;
    return run_schedule(cand, options);
  };
  res.outcome = attempt(schedule);
  if (res.outcome.ok) return res;  // nothing to shrink

  // Everything past the failing step is dead weight.
  res.schedule.steps.resize(res.outcome.failing_step + 1);

  // Greedy chunk removal: drop [i, i+chunk) while the schedule still fails.
  bool improved = true;
  while (improved && res.runs < max_runs) {
    improved = false;
    for (std::size_t chunk = std::max<std::size_t>(res.schedule.steps.size() / 2, 1); chunk >= 1;
         chunk /= 2) {
      for (std::size_t i = 0; i + chunk <= res.schedule.steps.size() && res.runs < max_runs;) {
        FuzzSchedule cand = res.schedule;
        cand.steps.erase(cand.steps.begin() + static_cast<std::ptrdiff_t>(i),
                         cand.steps.begin() + static_cast<std::ptrdiff_t>(i + chunk));
        FuzzOutcome out = attempt(cand);
        if (!out.ok) {
          cand.steps.resize(out.failing_step + 1);
          res.schedule = std::move(cand);
          res.outcome = std::move(out);
          improved = true;
        } else {
          i += chunk;
        }
      }
      if (chunk == 1) break;
    }
  }

  // Shrink burst operands: halve write/read counts while the failure holds.
  for (std::size_t i = 0; i < res.schedule.steps.size() && res.runs < max_runs; ++i) {
    const StepKind kind = res.schedule.steps[i].kind;
    if (kind != StepKind::write_burst && kind != StepKind::read_burst &&
        kind != StepKind::crash_burst) {
      continue;
    }
    while (res.runs < max_runs && i < res.schedule.steps.size() &&
           res.schedule.steps[i].b > 1) {
      FuzzSchedule cand = res.schedule;
      cand.steps[i].b /= 2;
      FuzzOutcome out = attempt(cand);
      if (out.ok) break;
      cand.steps.resize(out.failing_step + 1);
      res.schedule = std::move(cand);
      res.outcome = std::move(out);
    }
  }
  return res;
}

}  // namespace swl::model
