// Model-based differential fuzzing of the translation-layer stack.
//
// A schedule — deterministic in its seed — drives two production stacks over
// two identical simulated chips:
//   stack A replays through the non-virtual record entry points
//     (write_record / read_record: the simulator hot path),
//   stack B replays through the virtual write / read slow paths,
// and after every step both are cross-checked against each other and against
// the executable reference models of src/model (logical contents, mapping
// structure, erase accounting, the SW Leveler's recomputed-from-the-raw-log
// state, BET snapshot bytes) plus the layers' own check_invariants().
//
// Steps cover host bursts, mid-run power-loss-hook and erase-observer
// attach/detach (toggling the fast path off and on), BET snapshot saves,
// clean power cycles and crash bursts with deterministic crash-point
// injection (reusing src/fault). Any divergence yields the failing step and
// a diagnostic; minimize() shrinks a failing schedule to a small replayable
// reproducer.
#ifndef SWL_MODEL_FUZZ_HPP
#define SWL_MODEL_FUZZ_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/simulator.hpp"
#include "swl/leveler.hpp"
#include "tl/gc_policy.hpp"

namespace swl::model {

/// One fuzz command. The operand meaning depends on the kind:
///   write_burst    a = RNG seed, b = write count, c = hot-span percent
///   read_burst     a = RNG seed, b = read count
///   single_write   a = LBA
///   single_read    a = LBA
///   hook_attach    (attach a benign power-loss hook: fast path off)
///   hook_detach
///   observer_attach (attach a counting chip erase observer)
///   observer_detach
///   snapshot_save  (dual-buffer BET snapshot save; no-op without leveler)
///   power_cycle    (clean shutdown: save, remount, reload the leveler)
///   crash_burst    a = RNG seed, b = write count, c = crash point
///                  (src/fault numbering; beyond the burst = no crash)
enum class StepKind : std::uint8_t {
  write_burst,
  read_burst,
  single_write,
  single_read,
  hook_attach,
  hook_detach,
  observer_attach,
  observer_detach,
  snapshot_save,
  power_cycle,
  crash_burst,
};

[[nodiscard]] std::string_view to_string(StepKind k) noexcept;

struct FuzzStep {
  StepKind kind = StepKind::single_write;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

/// Stack shape shared by both sides of the differential pair. Stack B may
/// additionally run NFTL's reference (two-pass) victim scan — pinning the
/// production single-pass maybe_invalid scan against it.
struct FuzzParams {
  sim::LayerKind layer = sim::LayerKind::ftl;
  BlockIndex block_count = 16;
  PageIndex pages_per_block = 8;
  std::uint32_t page_size_bytes = 512;
  bool with_leveler = true;
  wear::LevelerConfig leveler;
  tl::VictimPolicy victim_policy = tl::VictimPolicy::greedy_cyclic;
  double gc_cost_weight = 1.0;
  /// Exported logical pages (FTL/DFTL) / virtual blocks (NFTL); 0 = layer
  /// default.
  Lba lba_count = 0;
  Vba vba_count = 0;
  /// DFTL shape (ignored by the other layers); 0 = DftlConfig default.
  std::uint32_t dftl_lbas_per_tpage = 0;
  std::uint32_t dftl_cmt_capacity = 0;
  std::uint32_t dftl_writeback_batch = 1;
  /// Stack B selects GC victims with the reference scans instead of the
  /// victim index (FtlConfig/NftlConfig::reference_victim_scan).
  bool reference_scan_b = false;
  /// Injected media-error probability (same stream on both chips).
  double program_fail_p = 0.0;
  std::uint64_t failure_seed = 1;
};

struct FuzzSchedule {
  FuzzParams params;
  std::vector<FuzzStep> steps;
};

/// Deliberate-bug injection for harness self-tests: the fuzzer must CATCH
/// these, proving the oracles have teeth.
struct FuzzOptions {
  enum class Inject : std::uint8_t {
    none,
    /// Drop one SWL-BETUpdate on stack A: at the first step boundary at or
    /// after inject_at_step where the leveler has counted an erase, its ecnt
    /// is rolled back by one (the flag half of Algorithm 2 left intact) —
    /// exactly the state a leveler that missed one erase event would hold.
    skip_bet_update,
    /// Drop one CMT write-back on stack A (DFTL only): at the first step
    /// boundary at or after inject_at_step where some CMT slot is dirty, its
    /// dirty flag is cleared without programming the translation page —
    /// exactly the state a skipped write-back would leave behind.
    skip_cmt_writeback,
  };
  Inject inject = Inject::none;
  std::size_t inject_at_step = 0;
};

inline constexpr std::size_t kNoStep = static_cast<std::size_t>(-1);

struct FuzzOutcome {
  bool ok = true;
  /// Index of the step after which the divergence surfaced (kNoStep if ok).
  std::size_t failing_step = kNoStep;
  std::string message;
  /// FNV-1a digest of the final observable state (erase counts, logical
  /// contents, leveler state, counters); bit-stable for a given schedule.
  std::uint64_t fingerprint = 0;
  /// Stack A writes that completed through the registered fast path.
  std::uint64_t fast_path_writes = 0;
};

/// Derives a full schedule (params + steps) from `seed`, deterministically.
/// `force_layer` pins the translation layer kind (for coverage quotas).
[[nodiscard]] FuzzSchedule generate_schedule(
    std::uint64_t seed, std::optional<sim::LayerKind> force_layer = std::nullopt);

/// Executes a schedule, cross-checking after every step. Bit-reproducible:
/// the same schedule and options always return the same outcome.
[[nodiscard]] FuzzOutcome run_schedule(const FuzzSchedule& schedule,
                                       const FuzzOptions& options = {});

/// Text form ("swl-fuzz-schedule v1"), replayable via deserialize().
[[nodiscard]] std::string serialize(const FuzzSchedule& schedule);
[[nodiscard]] bool deserialize(const std::string& text, FuzzSchedule* out, std::string* error);

struct MinimizeResult {
  FuzzSchedule schedule;
  FuzzOutcome outcome;
  std::size_t runs = 0;
};

/// Shrinks a failing schedule (truncation to the failing step, greedy chunk
/// removal, burst-size halving) while it keeps failing under `options`.
/// A passing schedule is returned unchanged.
[[nodiscard]] MinimizeResult minimize(const FuzzSchedule& schedule,
                                      const FuzzOptions& options = {},
                                      std::size_t max_runs = 2000);

}  // namespace swl::model

#endif  // SWL_MODEL_FUZZ_HPP
