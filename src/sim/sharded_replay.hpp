// Deterministic intra-point sharding of segment-replay runs.
//
// A single sweep point (one fig5/fig6 configuration) is a serial replay: one
// simulator, one record stream. Sharding splits that point's record budget
// across N independent *device replicas* — each shard owns a fresh simulator
// over the same SimConfig and replays its own SegmentReplaySource stream,
// seeded per shard — and merges the N SimResults into one aggregate. Because
// every shard is self-contained and the merge is a fixed-order reduction,
// the merged result is a pure function of (config, scale, base trace, total
// records, shard count): running the shards on 1, 2 or 8 worker threads, in
// any completion order, produces bit-identical output. The per-record
// reference loop Simulator::run_serial doubles as the canary: replaying each
// shard through it must merge to the same result as the batched pipeline
// (pinned by the sweep determinism test).
//
// Statistical reading: N shards of B records sample N independent segment
// streams of the same workload, so merged wear/erase aggregates estimate the
// same distribution a serial N*B-record run samples — they are a parallel
// estimator of the same experiment, not a bit-exact re-ordering of it.
#ifndef SWL_SIM_SHARDED_REPLAY_HPP
#define SWL_SIM_SHARDED_REPLAY_HPP

#include <cstdint>
#include <vector>

#include "runner/sweep_runner.hpp"
#include "sim/experiments.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace swl::sim {

/// Per-shard replay seed: splitmix64 over the point seed and the shard
/// index, so shard streams are decorrelated and shard 0 of a 1-shard run
/// still differs from the unsharded stream only by this documented mapping.
[[nodiscard]] std::uint64_t shard_seed(std::uint64_t base_seed, std::uint32_t shard) noexcept;

/// Records shard `shard` replays out of `total` across `shards` shards: an
/// even split with the first total % shards shards taking one extra record,
/// so every record is replayed exactly once whatever the remainder. When
/// shards > total, the tail shards get a zero budget (their replay is an
/// empty run over the correct geometry, and the merge is unaffected).
/// Requires shards >= 1 and shard < shards (throws PreconditionError).
[[nodiscard]] std::uint64_t shard_record_budget(std::uint64_t total, std::uint32_t shards,
                                                std::uint32_t shard);

/// Fixed-order reduction of independent shard results: counters, erase
/// counts and leveler stats sum element-wise; the erase summary is recomputed
/// from the merged counts; elapsed time is the longest shard's; the first
/// failure is the earliest across shards.
[[nodiscard]] SimResult merge_shard_results(const std::vector<SimResult>& shard_results);

/// Runs one shard to completion: a fresh simulator over `config` replaying a
/// shard-seeded SegmentReplaySource for this shard's record budget (capped
/// at the `years` horizon). `use_serial` drives Simulator::run_serial
/// instead of the batched run() — the bit-identical canary path.
[[nodiscard]] SimResult run_replay_shard(const SimConfig& config, const ExperimentScale& scale,
                                         const trace::Trace& base, double years,
                                         std::uint64_t total_records, std::uint32_t shards,
                                         std::uint32_t shard, bool use_serial = false);

/// The full sharded point: runs all shards on `runner` (inline when its
/// jobs == 1) and merges in shard order. The result is independent of the
/// runner's worker count and of scheduling order.
[[nodiscard]] SimResult run_sharded_on(runner::SweepRunner& runner, const SimConfig& config,
                                       const ExperimentScale& scale, const trace::Trace& base,
                                       double years, std::uint64_t total_records,
                                       std::uint32_t shards, bool use_serial = false);

}  // namespace swl::sim

#endif  // SWL_SIM_SHARDED_REPLAY_HPP
