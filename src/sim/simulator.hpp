// Simulation driver: wires a trace source to a translation layer over a
// simulated NAND chip (optionally with a SW Leveler attached) and runs until
// a stop condition — first block failure, a simulated-time horizon, or trace
// exhaustion.
//
// The record loop is batched: run() pulls records through
// TraceSource::next_batch() into an owned buffer and replays them through the
// layer's non-virtual write_record()/read_record() entry points. A carry
// buffer keeps records pulled but not yet replayed when a call stops early
// (horizon, failure, max_records), so resumed runs see the exact record
// stream a per-record loop would — run_serial() is that reference loop, kept
// for the equivalence tests.
#ifndef SWL_SIM_SIMULATOR_HPP
#define SWL_SIM_SIMULATOR_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/clock.hpp"
#include "core/geometry.hpp"
#include "dftl/dftl.hpp"
#include "ftl/ftl.hpp"
#include "nand/nand_chip.hpp"
#include "nftl/nftl.hpp"
#include "stats/summary.hpp"
#include "swl/leveler.hpp"
#include "swl/oracle_leveler.hpp"
#include "tl/translation_layer.hpp"
#include "trace/trace.hpp"

namespace swl::sim {

enum class LayerKind { ftl, nftl, dftl };

[[nodiscard]] std::string_view to_string(LayerKind k) noexcept;

/// Everything needed to stand up a device + translation layer (+ leveler).
struct SimConfig {
  FlashGeometry geometry;
  NandTiming timing;
  /// Optional media-error injection (see nand::FailureInjection).
  nand::FailureInjection failures;
  LayerKind layer = LayerKind::ftl;
  /// Static wear leveling configuration; std::nullopt disables SWL.
  std::optional<wear::LevelerConfig> leveler;
  /// Alternative: attach the counter-table oracle policy instead of the SW
  /// Leveler (ablation baseline; mutually exclusive with `leveler`).
  std::optional<wear::OracleConfig> oracle_leveler;
  /// Layer tuning (lba_count/vba_count of 0 keeps the layer's default).
  ftl::FtlConfig ftl;
  nftl::NftlConfig nftl;
  dftl::DftlConfig dftl;
};

/// Replay-pipeline instrumentation, accumulated across run() calls. Pure
/// wall-clock diagnostics: none of these feed back into simulation state, so
/// results stay bit-identical whatever the host machine's speed.
struct PerfCounters {
  std::uint64_t records = 0;        ///< records replayed through run()
  std::uint64_t batches = 0;        ///< next_batch calls that returned data
  std::uint64_t batch_capacity = 0; ///< slots requested across those calls
  std::uint64_t batch_filled = 0;   ///< records those calls returned
  double source_seconds = 0.0;      ///< wall time inside next_batch
  double replay_seconds = 0.0;      ///< wall time in the replay loop proper

  /// How full the average batch came back (1.0 = the source always filled
  /// the buffer; low values mean the source, not the device, paces the run).
  [[nodiscard]] double batch_fill_ratio() const noexcept {
    return batch_capacity == 0
               ? 0.0
               : static_cast<double>(batch_filled) / static_cast<double>(batch_capacity);
  }
  [[nodiscard]] double records_per_second() const noexcept {
    const double t = source_seconds + replay_seconds;
    return t > 0.0 ? static_cast<double>(records) / t : 0.0;
  }
  [[nodiscard]] double source_ns_per_record() const noexcept {
    return records == 0 ? 0.0 : source_seconds * 1e9 / static_cast<double>(records);
  }
  [[nodiscard]] double replay_ns_per_record() const noexcept {
    return records == 0 ? 0.0 : replay_seconds * 1e9 / static_cast<double>(records);
  }
};

/// Snapshot of a simulation's outcome.
struct SimResult {
  /// Simulated years until any block first reached the endurance limit
  /// (std::nullopt if the run stopped before any block wore out).
  std::optional<double> first_failure_years;
  /// Simulated years covered by the run.
  double elapsed_years = 0.0;
  std::uint64_t records_processed = 0;
  stats::Summary erase_summary;
  /// Per-block erase counts at the end of the run (index == block number).
  std::vector<std::uint32_t> erase_counts;
  tl::TlCounters counters;
  nand::NandCounters chip_counters;
  wear::LevelerStats leveler_stats;  // zeros when SWL is disabled
  /// Replay-throughput diagnostics (wall-clock; not part of the simulated
  /// state). Fast-path hit rate = counters.fast_path_writes / host_writes.
  PerfCounters perf;
};

class Simulator {
 public:
  explicit Simulator(const SimConfig& config);
  /// Unhooks the wear tracker's erase observer. The chip dies with this
  /// Simulator anyway, but the token-based removal keeps the registration
  /// balanced (and the observer-lifetime lint rule green) — the PR 2
  /// dangling-observer bug class is exactly an "owner outlives the hook"
  /// assumption that later refactors silently break.
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Feeds records from `source` until (a) the source ends, (b) `max_records`
  /// records were processed, (c) the simulated clock passes `max_years`, or
  /// (d) `stop_on_first_failure` and a block wore out. Returns the records
  /// processed by *this call* — [[nodiscard]] because a caller that ignores
  /// the count cannot tell a completed budget from an early stop. Resumable:
  /// call again to continue — but keep feeding the same source, since a call
  /// that stops early may carry already-pulled records into the next call.
  [[nodiscard]] std::uint64_t run(trace::TraceSource& source, double max_years,
                                  bool stop_on_first_failure,
                                  std::uint64_t max_records = UINT64_MAX);

  /// Reference implementation of run(): one record at a time through the
  /// virtual TraceSource::next() and TranslationLayer::write()/read()
  /// interfaces — no batching, no registered fast paths. Exists to pin the
  /// batched pipeline: replaying the same trace through run() and
  /// run_serial() must produce bit-identical results. Do not interleave with
  /// run() on one source (run() may hold pulled records in its carry buffer).
  [[nodiscard]] std::uint64_t run_serial(trace::TraceSource& source, double max_years,
                                         bool stop_on_first_failure,
                                         std::uint64_t max_records = UINT64_MAX);

  [[nodiscard]] SimResult result() const;

  [[nodiscard]] tl::TranslationLayer& layer() noexcept { return *layer_; }
  [[nodiscard]] const tl::TranslationLayer& layer() const noexcept { return *layer_; }
  [[nodiscard]] nand::NandChip& chip() noexcept { return *chip_; }
  [[nodiscard]] const nand::NandChip& chip() const noexcept { return *chip_; }
  [[nodiscard]] SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] const SimClock& clock() const noexcept { return clock_; }
  [[nodiscard]] Lba lba_count() const noexcept { return layer_->lba_count(); }

  /// Rebinds the simulator's (and its chip's) thread-confinement check: a
  /// driver that replays rounds on a worker pool calls this at every
  /// ownership handoff — before dispatching a round to a (possibly
  /// different) worker, and again before touching the stack from the
  /// coordinating thread. One simulator still runs on exactly one thread at
  /// a time; only the owner changes.
  void detach_owner_thread() noexcept {
    thread_checker_.detach();
    chip_->detach_owner_thread();
  }

 private:
  /// Records pulled per next_batch call: 4096 records = 64 KiB of buffer,
  /// large enough to amortize the virtual call, small enough to stay in L2.
  static constexpr std::size_t kBatchCapacity = 4096;


  /// O(1)-per-erase running erase-count summary (fed by an erase observer),
  /// so result() does not rescan every block. Integer-exact sums; produces
  /// the same Summary stats::summarize computes from the full table.
  struct WearTracker {
    std::uint64_t sum = 0;              // sum of all erase counts
    unsigned __int128 sum_squares = 0;  // sum of squared erase counts
    std::uint32_t min = 0;
    std::uint32_t max = 0;
    std::vector<std::uint32_t> histogram;  // blocks per erase count
    std::size_t block_count = 0;

    void init(std::size_t blocks);
    void on_erase(std::uint32_t new_count);
    [[nodiscard]] stats::Summary summary() const;
  };

  SimClock clock_;
  std::unique_ptr<nand::NandChip> chip_;
  std::unique_ptr<tl::TranslationLayer> layer_;
  std::uint64_t records_ = 0;
  std::uint64_t next_payload_ = 1;
  // Carry buffer: batch_[batch_pos_..batch_len_) holds records pulled from
  // the source but not yet replayed (a run() call can stop mid-batch).
  std::vector<trace::TraceRecord> batch_;
  std::size_t batch_pos_ = 0;
  std::size_t batch_len_ = 0;
  WearTracker wear_;
  std::size_t wear_observer_token_ = 0;
  // Thread-confined, like the chip it drives: perf_ and the carry buffer are
  // mutated without synchronization, so one Simulator must stay on one
  // thread. Checked (debug builds) at every run()/run_serial() entry.
  PerfCounters perf_;
  ThreadChecker thread_checker_;
};

/// Builds the standard simulator stack for a config.
[[nodiscard]] std::unique_ptr<Simulator> make_simulator(const SimConfig& config);

/// Builds a translation layer of `kind` over `chip`: fresh when `mounted`
/// is false (expects an erased chip), otherwise by mount-scanning the
/// existing flash image (crash recovery). Shared by the Simulator and the
/// fault-injection harness so both construct layers the same way.
[[nodiscard]] std::unique_ptr<tl::TranslationLayer> make_layer(
    LayerKind kind, nand::NandChip& chip, const ftl::FtlConfig& ftl_config,
    const nftl::NftlConfig& nftl_config, const dftl::DftlConfig& dftl_config, bool mounted);

}  // namespace swl::sim

#endif  // SWL_SIM_SIMULATOR_HPP
