// Simulation driver: wires a trace source to a translation layer over a
// simulated NAND chip (optionally with a SW Leveler attached) and runs until
// a stop condition — first block failure, a simulated-time horizon, or trace
// exhaustion.
#ifndef SWL_SIM_SIMULATOR_HPP
#define SWL_SIM_SIMULATOR_HPP

#include <cstdint>
#include <memory>
#include <optional>

#include "core/clock.hpp"
#include "core/geometry.hpp"
#include "ftl/ftl.hpp"
#include "nand/nand_chip.hpp"
#include "nftl/nftl.hpp"
#include "stats/summary.hpp"
#include "swl/leveler.hpp"
#include "swl/oracle_leveler.hpp"
#include "tl/translation_layer.hpp"
#include "trace/trace.hpp"

namespace swl::sim {

enum class LayerKind { ftl, nftl };

[[nodiscard]] std::string_view to_string(LayerKind k) noexcept;

/// Everything needed to stand up a device + translation layer (+ leveler).
struct SimConfig {
  FlashGeometry geometry;
  NandTiming timing;
  /// Optional media-error injection (see nand::FailureInjection).
  nand::FailureInjection failures;
  LayerKind layer = LayerKind::ftl;
  /// Static wear leveling configuration; std::nullopt disables SWL.
  std::optional<wear::LevelerConfig> leveler;
  /// Alternative: attach the counter-table oracle policy instead of the SW
  /// Leveler (ablation baseline; mutually exclusive with `leveler`).
  std::optional<wear::OracleConfig> oracle_leveler;
  /// Layer tuning (lba_count/vba_count of 0 keeps the layer's default).
  ftl::FtlConfig ftl;
  nftl::NftlConfig nftl;
};

/// Snapshot of a simulation's outcome.
struct SimResult {
  /// Simulated years until any block first reached the endurance limit
  /// (std::nullopt if the run stopped before any block wore out).
  std::optional<double> first_failure_years;
  /// Simulated years covered by the run.
  double elapsed_years = 0.0;
  std::uint64_t records_processed = 0;
  stats::Summary erase_summary;
  /// Per-block erase counts at the end of the run (index == block number).
  std::vector<std::uint32_t> erase_counts;
  tl::TlCounters counters;
  nand::NandCounters chip_counters;
  wear::LevelerStats leveler_stats;  // zeros when SWL is disabled
};

class Simulator {
 public:
  explicit Simulator(const SimConfig& config);

  /// Feeds records from `source` until (a) the source ends, (b) `max_records`
  /// records were processed, (c) the simulated clock passes `max_years`, or
  /// (d) `stop_on_first_failure` and a block wore out. Returns the records
  /// processed by *this call*. Resumable: call again to continue.
  std::uint64_t run(trace::TraceSource& source, double max_years,
                    bool stop_on_first_failure,
                    std::uint64_t max_records = UINT64_MAX);

  [[nodiscard]] SimResult result() const;

  [[nodiscard]] tl::TranslationLayer& layer() noexcept { return *layer_; }
  [[nodiscard]] const tl::TranslationLayer& layer() const noexcept { return *layer_; }
  [[nodiscard]] nand::NandChip& chip() noexcept { return *chip_; }
  [[nodiscard]] const nand::NandChip& chip() const noexcept { return *chip_; }
  [[nodiscard]] SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] Lba lba_count() const noexcept { return layer_->lba_count(); }

 private:
  SimClock clock_;
  std::unique_ptr<nand::NandChip> chip_;
  std::unique_ptr<tl::TranslationLayer> layer_;
  std::uint64_t records_ = 0;
  std::uint64_t next_payload_ = 1;
};

/// Builds the standard simulator stack for a config.
[[nodiscard]] std::unique_ptr<Simulator> make_simulator(const SimConfig& config);

/// Builds a translation layer of `kind` over `chip`: fresh when `mounted`
/// is false (expects an erased chip), otherwise by mount-scanning the
/// existing flash image (crash recovery). Shared by the Simulator and the
/// fault-injection harness so both construct layers the same way.
[[nodiscard]] std::unique_ptr<tl::TranslationLayer> make_layer(LayerKind kind,
                                                              nand::NandChip& chip,
                                                              const ftl::FtlConfig& ftl_config,
                                                              const nftl::NftlConfig& nftl_config,
                                                              bool mounted);

}  // namespace swl::sim

#endif  // SWL_SIM_SIMULATOR_HPP
