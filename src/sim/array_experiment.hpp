// Array-scale experiment harness: the multi-chip analog of experiments.hpp.
//
// Wraps array::ChipArray + array::GlobalLevelCoordinator into the same
// experiment shapes the single-chip harness provides — fig5-style endurance
// points and fixed-budget wear-distribution runs — plus the metric that only
// exists at array scale: cross-chip erase variance (how evenly wear spreads
// *between* chips, the quantity the global coordinator exists to flatten).
//
// Determinism contract: run_array_on is a pure function of (scale, layer,
// leveler, base trace, budgets) — the SweepRunner's worker count never
// changes the result, and use_serial threads the per-record canary through
// every chip. Pinned by tests/array/array_determinism_test.
//
// Declared in swl::sim but compiled into the swl_array library: the harness
// needs the array types, and src/array already links swl_sim.
#ifndef SWL_SIM_ARRAY_EXPERIMENT_HPP
#define SWL_SIM_ARRAY_EXPERIMENT_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "array/chip_array.hpp"
#include "array/global_coordinator.hpp"
#include "runner/sweep_runner.hpp"
#include "sim/experiments.hpp"

namespace swl::sim {

/// Array experiment scale: a per-chip ExperimentScale plus the grid shape
/// and the coordinator tuning.
struct ArrayScale {
  ExperimentScale chip;
  std::uint32_t channels = 2;
  std::uint32_t dies = 2;
  array::CoordinatorConfig coordinator;
  /// false ablates the global coordinator (per-chip SWL only) — the
  /// baseline arm of the array sweep.
  bool coordinator_enabled = true;
  /// Records routed per replay round; the coordinator evaluates between
  /// rounds, so this is also the migration-decision cadence.
  std::uint64_t records_per_round = 1 << 14;

  [[nodiscard]] std::uint32_t chip_count() const noexcept { return channels * dies; }
};

/// Wear spread *between* chips: summary statistics over the per-chip mean
/// erase counts. max_over_avg is the coordinator's own trigger ratio, so a
/// working coordinator should report it below the configured threshold.
struct CrossChipWear {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double max_over_avg = 0.0;
};

struct ArrayOutcome {
  /// Per-chip results, indexed by chip (the same SimResult a standalone
  /// single-chip run yields).
  std::vector<SimResult> per_chip;
  /// All chips folded with sharded_replay's merge_shard_results: counters
  /// sum, elapsed is the longest chip's, first failure the earliest.
  SimResult combined;
  array::ArrayCounters array;
  array::CoordinatorStats coordinator;
  std::vector<array::Decision> decisions;
  CrossChipWear cross_chip;
  std::optional<double> first_failure_years;
  double elapsed_years = 0.0;
  std::uint64_t rounds = 0;
};

/// Per-chip stack config for the scale (identical chips).
[[nodiscard]] array::ArrayConfig make_array_config(const ArrayScale& scale, LayerKind layer,
                                                   std::optional<wear::LevelerConfig> leveler);

/// Base trace over the *array's* logical space (chip_count × per-chip
/// pages), so the synthetic hot/cold structure spans chips and stripes get
/// genuinely different temperatures.
[[nodiscard]] trace::Trace make_array_base_trace(const ArrayScale& scale, LayerKind layer);

/// Summary statistics over per-chip mean erase counts.
[[nodiscard]] CrossChipWear summarize_cross_chip(const std::vector<double>& chip_mean_erases);

/// Runs the array experiment: segment-replay rounds routed across the array
/// on `runner`, the coordinator evaluating after every round, until
/// `total_records` are routed, the clock passes `years`, or (with
/// `stop_on_failure`) any chip records a first failure. `use_serial` drives
/// each chip's per-record reference loop — the canary arm.
[[nodiscard]] ArrayOutcome run_array_on(runner::SweepRunner& runner, const ArrayScale& scale,
                                        LayerKind layer,
                                        std::optional<wear::LevelerConfig> leveler,
                                        const trace::Trace& base, double years,
                                        std::uint64_t total_records, bool stop_on_failure,
                                        bool use_serial = false);

}  // namespace swl::sim

#endif  // SWL_SIM_ARRAY_EXPERIMENT_HPP
