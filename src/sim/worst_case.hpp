// Simulated validation of the Section 4 worst case (Figure 4 of the paper).
//
// An abstract device of H+C blocks: C blocks hold cold data that only static
// wear leveling ever touches; hot data is updated uniformly across the other
// blocks so that regular garbage collection erases them round-robin, each
// erase copying L live pages. The real SwLeveler runs against this process,
// and the measured extra erase/copy ratios are compared with the closed-form
// worst-case model (stats/overhead_model.hpp) — the simulated counterpart of
// Tables 2 and 3.
#ifndef SWL_SIM_WORST_CASE_HPP
#define SWL_SIM_WORST_CASE_HPP

#include <cstdint>

#include "stats/overhead_model.hpp"
#include "swl/leveler.hpp"

namespace swl::sim {

struct WorstCaseResult {
  /// Extra block erases caused by SWL divided by regular erases.
  double measured_extra_erase_ratio = 0.0;
  /// Extra live copies caused by SWL divided by regular live copies.
  double measured_extra_copy_ratio = 0.0;
  /// Closed-form predictions (exact denominators, not the approximation).
  double model_extra_erase_ratio = 0.0;
  double model_extra_copy_ratio = 0.0;
  std::uint64_t regular_erases = 0;
  std::uint64_t swl_erases = 0;
  std::uint64_t resetting_intervals = 0;
};

/// Runs the worst-case process for `intervals` complete resetting intervals
/// with mapping mode `k` (the model assumes k = 0; other k values show how
/// coarse mapping changes the overhead).
[[nodiscard]] WorstCaseResult simulate_worst_case(const stats::WorstCaseParams& params,
                                                  std::uint32_t k, std::uint64_t intervals,
                                                  std::uint64_t seed = 0xCAFE);

}  // namespace swl::sim

#endif  // SWL_SIM_WORST_CASE_HPP
