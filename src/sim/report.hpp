// Fixed-width table rendering for the bench harness so every reproduced
// table/figure prints in a uniform, diff-able format.
#ifndef SWL_SIM_REPORT_HPP
#define SWL_SIM_REPORT_HPP

#include <string>
#include <vector>

namespace swl::sim {

/// Right-aligned fixed-width text table with a header rule.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with column widths fitted to content.
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals.
[[nodiscard]] std::string fmt(double value, int digits = 2);

}  // namespace swl::sim

#endif  // SWL_SIM_REPORT_HPP
