#include "sim/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/contracts.hpp"

namespace swl::sim {

TableWriter::TableWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SWL_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TableWriter::add_row(std::vector<std::string> cells) {
  SWL_REQUIRE(cells.size() == headers_.size(), "row width does not match the header");
  rows_.push_back(std::move(cells));
}

std::string TableWriter::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  std::size_t rule = 0;
  for (const auto w : widths) rule += w + 2;
  os << std::string(rule - 2, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

}  // namespace swl::sim
