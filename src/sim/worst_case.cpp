#include "sim/worst_case.hpp"

#include "core/contracts.hpp"

namespace swl::sim {

namespace {

/// Cleaner for the abstract worst-case device: erasing a cold block copies a
/// full block of live pages (N); erasing a hot block copies the average L.
class WorstCaseCleaner final : public wear::Cleaner {
 public:
  WorstCaseCleaner(wear::SwLeveler& leveler, const stats::WorstCaseParams& params)
      : leveler_(leveler), params_(params) {}

  void collect_blocks(BlockIndex first, BlockIndex count) override {
    for (BlockIndex b = first; b < first + count; ++b) {
      ++swl_erases;
      const bool cold = b < params_.cold_blocks;
      swl_copies += cold ? static_cast<double>(params_.pages_per_block)
                         : params_.live_copies_per_gc;
      leveler_.on_block_erased(b);
    }
  }

  std::uint64_t swl_erases = 0;
  double swl_copies = 0.0;

 private:
  wear::SwLeveler& leveler_;
  const stats::WorstCaseParams& params_;
};

}  // namespace

WorstCaseResult simulate_worst_case(const stats::WorstCaseParams& params, std::uint32_t k,
                                    std::uint64_t intervals, std::uint64_t seed) {
  SWL_REQUIRE(params.hot_blocks > 0 && params.cold_blocks > 0, "H and C must be positive");
  SWL_REQUIRE(intervals > 0, "need at least one interval");

  const auto block_count =
      static_cast<BlockIndex>(params.hot_blocks + params.cold_blocks);
  wear::LevelerConfig lc;
  lc.k = k;
  lc.threshold = params.threshold;
  lc.rng_seed = seed;
  wear::SwLeveler leveler(block_count, lc);
  WorstCaseCleaner cleaner(leveler, params);

  // Blocks [0, C) hold cold data; blocks [C, C+H) participate in the hot
  // update cycle (H−1 data blocks plus the free block of Figure 4), erased
  // round-robin by regular garbage collection.
  std::uint64_t regular_erases = 0;
  double regular_copies = 0.0;
  BlockIndex hot_cursor = 0;
  const auto hot_base = static_cast<BlockIndex>(params.cold_blocks);
  const auto hot_span = static_cast<BlockIndex>(params.hot_blocks);

  while (leveler.stats().bet_resets < intervals) {
    const BlockIndex victim = hot_base + hot_cursor;
    hot_cursor = (hot_cursor + 1 == hot_span) ? 0 : hot_cursor + 1;
    ++regular_erases;
    regular_copies += params.live_copies_per_gc;
    leveler.on_block_erased(victim);
    if (leveler.needs_leveling()) leveler.run(cleaner);
  }

  WorstCaseResult r;
  r.regular_erases = regular_erases;
  r.swl_erases = cleaner.swl_erases;
  r.resetting_intervals = leveler.stats().bet_resets;
  r.measured_extra_erase_ratio =
      static_cast<double>(cleaner.swl_erases) / static_cast<double>(regular_erases);
  r.measured_extra_copy_ratio = cleaner.swl_copies / regular_copies;
  r.model_extra_erase_ratio = stats::extra_erase_ratio(params);
  r.model_extra_copy_ratio = stats::extra_copy_ratio(params);
  return r;
}

}  // namespace swl::sim
