#include "sim/array_experiment.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"
#include "sim/sharded_replay.hpp"
#include "trace/segment_replay.hpp"
#include "trace/synthetic.hpp"

namespace swl::sim {

array::ArrayConfig make_array_config(const ArrayScale& scale, LayerKind layer,
                                     std::optional<wear::LevelerConfig> leveler) {
  array::ArrayConfig config;
  config.channels = scale.channels;
  config.dies = scale.dies;
  config.chip = make_sim_config(scale.chip, layer, leveler);
  return config;
}

trace::Trace make_array_base_trace(const ArrayScale& scale, LayerKind layer) {
  const Lba global_lbas =
      exported_lba_count(scale.chip, layer) * static_cast<Lba>(scale.chip_count());
  return trace::generate_synthetic_trace(make_trace_config(scale.chip, global_lbas));
}

CrossChipWear summarize_cross_chip(const std::vector<double>& chip_mean_erases) {
  CrossChipWear w;
  if (chip_mean_erases.empty()) return w;
  double sum = 0.0;
  w.min = chip_mean_erases.front();
  w.max = chip_mean_erases.front();
  for (const double m : chip_mean_erases) {
    sum += m;
    w.min = std::min(w.min, m);
    w.max = std::max(w.max, m);
  }
  const auto n = static_cast<double>(chip_mean_erases.size());
  w.mean = sum / n;
  double sq = 0.0;
  for (const double m : chip_mean_erases) sq += (m - w.mean) * (m - w.mean);
  w.stddev = std::sqrt(sq / n);
  w.max_over_avg = w.mean > 0.0 ? w.max / w.mean : 0.0;
  return w;
}

ArrayOutcome run_array_on(runner::SweepRunner& runner, const ArrayScale& scale, LayerKind layer,
                          std::optional<wear::LevelerConfig> leveler, const trace::Trace& base,
                          double years, std::uint64_t total_records, bool stop_on_failure,
                          bool use_serial) {
  SWL_REQUIRE(scale.records_per_round >= 1, "rounds need at least one record");
  array::ChipArray arr(make_array_config(scale, layer, leveler));
  std::optional<array::GlobalLevelCoordinator> coordinator;
  if (scale.coordinator_enabled) {
    coordinator.emplace(arr.chip_count(), scale.coordinator);
  }
  // Same stream derivation the single-chip harness uses (seed ^ 0x1234).
  trace::SegmentReplaySource source(base, scale.chip.segment_minutes * 60.0,
                                    scale.chip.seed ^ 0x1234);
  std::vector<trace::TraceRecord> buffer(
      static_cast<std::size_t>(std::min<std::uint64_t>(scale.records_per_round, 1ULL << 20)));

  ArrayOutcome out;
  std::uint64_t routed = 0;
  while (routed < total_records) {
    const auto want = static_cast<std::size_t>(
        std::min<std::uint64_t>(buffer.size(), total_records - routed));
    const std::size_t n = source.next_batch(buffer.data(), want);
    if (n == 0) break;  // finite source ended
    arr.replay_round({buffer.data(), n}, runner, years, use_serial);
    routed += n;
    ++out.rounds;
    if (coordinator.has_value()) {
      coordinator->evaluate_round(arr);  // the full decision log is captured below
    }
    if (stop_on_failure && arr.first_failure_years().has_value()) break;
    if (arr.elapsed_years() >= years) break;
  }

  out.per_chip.reserve(arr.chip_count());
  for (std::uint32_t c = 0; c < arr.chip_count(); ++c) out.per_chip.push_back(arr.chip_result(c));
  out.combined = merge_shard_results(out.per_chip);
  out.array = arr.counters();
  if (coordinator.has_value()) {
    out.coordinator = coordinator->stats();
    out.decisions = coordinator->log();
  }
  out.cross_chip = summarize_cross_chip(arr.per_chip_mean_erases());
  out.first_failure_years = arr.first_failure_years();
  out.elapsed_years = arr.elapsed_years();
  return out;
}

}  // namespace swl::sim
