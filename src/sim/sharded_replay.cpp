#include "sim/sharded_replay.hpp"

#include <algorithm>

#include "core/contracts.hpp"
#include "stats/summary.hpp"
#include "trace/segment_replay.hpp"

namespace swl::sim {

std::uint64_t shard_seed(std::uint64_t base_seed, std::uint32_t shard) noexcept {
  // splitmix64 of base_seed advanced shard+1 golden-ratio steps: the
  // canonical stream-splitting recipe — fixed, documented, and platform
  // independent, so shard streams are reproducible everywhere.
  std::uint64_t z = base_seed + 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(shard) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t shard_record_budget(std::uint64_t total, std::uint32_t shards,
                                  std::uint32_t shard) {
  // Guard the division: shards == 0 would be UB here, well before any
  // caller-side SWL_REQUIRE gets a chance to fire.
  SWL_REQUIRE(shards >= 1, "shard count must be >= 1");
  SWL_REQUIRE(shard < shards, "shard index out of range");
  return total / shards + (shard < total % shards ? 1 : 0);
}

SimResult merge_shard_results(const std::vector<SimResult>& shard_results) {
  SWL_REQUIRE(!shard_results.empty(), "merge needs at least one shard result");
  SimResult merged = shard_results.front();
  for (std::size_t i = 1; i < shard_results.size(); ++i) {
    const SimResult& s = shard_results[i];
    SWL_REQUIRE(s.erase_counts.size() == merged.erase_counts.size(),
                "shards must share one geometry");
    if (s.first_failure_years.has_value()) {
      merged.first_failure_years =
          merged.first_failure_years.has_value()
              ? std::min(*merged.first_failure_years, *s.first_failure_years)
              : s.first_failure_years;
    }
    merged.elapsed_years = std::max(merged.elapsed_years, s.elapsed_years);
    merged.records_processed += s.records_processed;
    for (std::size_t b = 0; b < merged.erase_counts.size(); ++b) {
      merged.erase_counts[b] += s.erase_counts[b];
    }
    merged.counters.host_writes += s.counters.host_writes;
    merged.counters.host_reads += s.counters.host_reads;
    merged.counters.gc_erases += s.counters.gc_erases;
    merged.counters.swl_erases += s.counters.swl_erases;
    merged.counters.gc_live_copies += s.counters.gc_live_copies;
    merged.counters.swl_live_copies += s.counters.swl_live_copies;
    merged.counters.fast_path_writes += s.counters.fast_path_writes;
    merged.chip_counters.reads += s.chip_counters.reads;
    merged.chip_counters.programs += s.chip_counters.programs;
    merged.chip_counters.erases += s.chip_counters.erases;
    merged.chip_counters.program_failures += s.chip_counters.program_failures;
    merged.chip_counters.erase_failures += s.chip_counters.erase_failures;
    merged.chip_counters.payload_arena_allocations += s.chip_counters.payload_arena_allocations;
    merged.leveler_stats.collections_requested += s.leveler_stats.collections_requested;
    merged.leveler_stats.bet_resets += s.leveler_stats.bet_resets;
    merged.leveler_stats.activations += s.leveler_stats.activations;
    merged.leveler_stats.stalls += s.leveler_stats.stalls;
    merged.perf.records += s.perf.records;
    merged.perf.batches += s.perf.batches;
    merged.perf.batch_capacity += s.perf.batch_capacity;
    merged.perf.batch_filled += s.perf.batch_filled;
    merged.perf.source_seconds += s.perf.source_seconds;
    merged.perf.replay_seconds += s.perf.replay_seconds;
  }
  // Wear statistics over the union of all shards' blocks: recomputed from
  // the merged table with the same summarize() the serial path uses.
  merged.erase_summary = stats::summarize(merged.erase_counts);
  return merged;
}

SimResult run_replay_shard(const SimConfig& config, const ExperimentScale& scale,
                           const trace::Trace& base, double years, std::uint64_t total_records,
                           std::uint32_t shards, std::uint32_t shard, bool use_serial) {
  SWL_REQUIRE(shards >= 1, "shard count must be >= 1");
  SWL_REQUIRE(shard < shards, "shard index out of range");
  auto sim = make_simulator(config);
  // Same stream derivation run_config_on uses (scale.seed ^ 0x1234), then
  // split per shard.
  trace::SegmentReplaySource source(base, scale.segment_minutes * 60.0,
                                    shard_seed(scale.seed ^ 0x1234, shard));
  const std::uint64_t budget = shard_record_budget(total_records, shards, shard);
  // run()/run_serial() return the records processed by the call, not a
  // Status; the count still carries an invariant worth keeping: a shard may
  // stop early (horizon, exhausted source) but can never replay more than
  // its budget, or the merged point would double-count records.
  const std::uint64_t processed =
      use_serial ? sim->run_serial(source, years, /*stop_on_first_failure=*/false, budget)
                 : sim->run(source, years, /*stop_on_first_failure=*/false, budget);
  SWL_ASSERT(processed <= budget, "shard replayed more records than its budget");
  return sim->result();
}

SimResult run_sharded_on(runner::SweepRunner& runner, const SimConfig& config,
                         const ExperimentScale& scale, const trace::Trace& base, double years,
                         std::uint64_t total_records, std::uint32_t shards, bool use_serial) {
  SWL_REQUIRE(shards >= 1, "shard count must be >= 1");
  std::vector<SimResult> results = runner.map(shards, [&](std::size_t shard) {
    return run_replay_shard(config, scale, base, years, total_records, shards,
                            static_cast<std::uint32_t>(shard), use_serial);
  });
  return merge_shard_results(results);
}

}  // namespace swl::sim
