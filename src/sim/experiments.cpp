#include "sim/experiments.hpp"

#include "core/contracts.hpp"
#include "trace/segment_replay.hpp"

namespace swl::sim {

ExperimentScale ExperimentScale::paper() {
  ExperimentScale s;
  s.block_count = 4096;  // 1 GB MLC×2
  s.endurance = 10'000;
  s.base_trace_days = 30.0;
  s.max_years = 2'000.0;
  return s;
}

double scaled_threshold(double paper_threshold, const ExperimentScale& scale) {
  return std::max(1.0, paper_threshold * scale.endurance / 10'000.0);
}

SimConfig make_sim_config(const ExperimentScale& scale, LayerKind layer,
                          std::optional<wear::LevelerConfig> leveler) {
  SimConfig config;
  config.geometry = scaled_geometry(make_geometry(scale.cell, 1ULL << 30), scale.block_count);
  config.timing = default_timing(scale.cell);
  config.timing.endurance = scale.endurance;
  config.layer = layer;
  config.leveler = leveler;
  return config;
}

trace::SyntheticConfig make_trace_config(const ExperimentScale& scale, Lba lba_count) {
  trace::SyntheticConfig tc;
  tc.lba_count = lba_count;
  tc.duration_s = scale.base_trace_days * 24 * 3600;
  tc.seed = scale.seed;
  return tc;
}

Lba exported_lba_count(const ExperimentScale& scale, LayerKind layer) {
  // Stand up a throwaway stack; construction is cheap and keeps the sizing
  // rules in exactly one place (the layers themselves).
  return make_simulator(make_sim_config(scale, layer, std::nullopt))->lba_count();
}

trace::Trace make_base_trace(const ExperimentScale& scale, LayerKind layer) {
  return trace::generate_synthetic_trace(
      make_trace_config(scale, exported_lba_count(scale, layer)));
}

SimResult run_config_on(const SimConfig& config, const ExperimentScale& scale,
                        const trace::Trace& base, double years, bool stop_on_failure) {
  auto sim = make_simulator(config);
  trace::SegmentReplaySource source(base, scale.segment_minutes * 60.0, scale.seed ^ 0x1234);
  constexpr std::uint64_t kBatch = 1 << 16;
  while (true) {
    const std::uint64_t n = sim->run(source, years, stop_on_failure, kBatch);
    if (stop_on_failure && sim->chip().first_failure().has_value()) break;
    if (sim->clock().years() >= years) break;
    if (n == 0) break;  // trace ended or device full
  }
  return sim->result();
}

SimResult run_infinite_on(const ExperimentScale& scale, LayerKind layer,
                          std::optional<wear::LevelerConfig> leveler, const trace::Trace& base,
                          double years, bool stop_on_failure) {
  return run_config_on(make_sim_config(scale, layer, leveler), scale, base, years,
                       stop_on_failure);
}

namespace {

SimResult run_infinite(const ExperimentScale& scale, LayerKind layer,
                       std::optional<wear::LevelerConfig> leveler, double years,
                       bool stop_on_failure) {
  const trace::Trace base = make_base_trace(scale, layer);
  return run_infinite_on(scale, layer, leveler, base, years, stop_on_failure);
}

}  // namespace

EnduranceOutcome run_endurance(const ExperimentScale& scale, LayerKind layer,
                               std::optional<wear::LevelerConfig> leveler) {
  EnduranceOutcome out;
  out.sim = run_infinite(scale, layer, leveler, scale.max_years, /*stop_on_failure=*/true);
  if (out.sim.first_failure_years.has_value()) {
    out.failed = true;
    out.first_failure_years = *out.sim.first_failure_years;
  } else {
    out.first_failure_years = scale.max_years;
  }
  return out;
}

SimResult run_for_years(const ExperimentScale& scale, LayerKind layer,
                        std::optional<wear::LevelerConfig> leveler, double years) {
  SWL_REQUIRE(years > 0.0, "years must be positive");
  return run_infinite(scale, layer, leveler, years, /*stop_on_failure=*/false);
}

OverheadOutcome run_overhead(const ExperimentScale& scale, LayerKind layer,
                             const wear::LevelerConfig& leveler, double years) {
  OverheadOutcome out;
  out.with_swl = run_for_years(scale, layer, leveler, years);
  out.without_swl = run_for_years(scale, layer, std::nullopt, years);
  const auto erases_with = static_cast<double>(out.with_swl.counters.total_erases());
  const auto erases_without = static_cast<double>(out.without_swl.counters.total_erases());
  const auto copies_with = static_cast<double>(out.with_swl.counters.total_live_copies());
  const auto copies_without = static_cast<double>(out.without_swl.counters.total_live_copies());
  out.erase_ratio_percent = erases_without > 0.0 ? 100.0 * erases_with / erases_without : 100.0;
  out.copy_ratio_percent = copies_without > 0.0 ? 100.0 * copies_with / copies_without : 100.0;
  return out;
}

}  // namespace swl::sim
