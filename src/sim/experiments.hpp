// Paper-experiment harness (Section 5 of the paper).
//
// Wraps the simulator into the three experiment shapes of the evaluation:
//   - endurance / first-failure-time runs        (Figure 5)
//   - fixed-duration wear-distribution runs      (Table 4)
//   - SWL-vs-baseline overhead comparisons       (Figures 6 and 7)
//
// Experiments run at a configurable scale. The default scale preserves the
// paper's block shape (MLC×2: 128 pages × 2 KB) and hot/cold workload
// structure but shrinks the block count and endurance so a full sweep
// finishes in seconds; ExperimentScale::paper() is the full 1 GB / 10k-cycle
// configuration.
#ifndef SWL_SIM_EXPERIMENTS_HPP
#define SWL_SIM_EXPERIMENTS_HPP

#include <optional>

#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"

namespace swl::sim {

struct ExperimentScale {
  BlockIndex block_count = 256;
  CellType cell = CellType::mlc_x2;
  /// Erase-endurance limit (paper MLC×2: 10,000); scaled down by default so
  /// first-failure runs finish quickly.
  std::uint32_t endurance = 1'000;
  /// Length of the finite base trace the infinite trace replays segments of
  /// (the paper collected one month; segments are 10 minutes). Longer base
  /// traces make cold data colder: a once-written LBA recurs once per
  /// base-trace length on average under segment replay.
  double base_trace_days = 4.0;
  double segment_minutes = 10.0;
  /// Safety horizon for first-failure runs.
  double max_years = 2'000.0;
  std::uint64_t seed = 42;

  /// The paper's full-scale configuration (Section 5.1).
  [[nodiscard]] static ExperimentScale paper();
};

/// Maps a paper threshold T to this scale. The unevenness threshold is
/// calibrated against the endurance budget: a resetting interval covers
/// roughly T * size(BET) erases, so the number of intervals in a device
/// lifetime is ~ endurance / T. Keeping that ratio fixed preserves the
/// paper's leveling cadence at scaled endurance (identity at paper scale).
[[nodiscard]] double scaled_threshold(double paper_threshold, const ExperimentScale& scale);

/// Geometry/timing/layer plumbing for a scale.
[[nodiscard]] SimConfig make_sim_config(const ExperimentScale& scale, LayerKind layer,
                                        std::optional<wear::LevelerConfig> leveler);

/// The calibrated synthetic workload over `lba_count` logical pages.
[[nodiscard]] trace::SyntheticConfig make_trace_config(const ExperimentScale& scale,
                                                       Lba lba_count);

/// Logical pages the given layer kind exports at this scale (what the trace
/// must address).
[[nodiscard]] Lba exported_lba_count(const ExperimentScale& scale, LayerKind layer);

/// Generates the finite base trace the infinite trace replays segments of.
/// Sweeps should generate this once per layer kind and pass it to
/// run_endurance_on / run_for_years_on below.
[[nodiscard]] trace::Trace make_base_trace(const ExperimentScale& scale, LayerKind layer);

/// As run_endurance / run_for_years, but replaying segments of an existing
/// base trace (avoids regenerating the workload for every sweep point).
[[nodiscard]] SimResult run_infinite_on(const ExperimentScale& scale, LayerKind layer,
                                        std::optional<wear::LevelerConfig> leveler,
                                        const trace::Trace& base, double years,
                                        bool stop_on_failure);

/// Fully custom variant: the caller builds the SimConfig (alternative
/// levelers, allocation policies, hot/cold separation, ...) and supplies the
/// base trace; segment replay and batching come from `scale`.
[[nodiscard]] SimResult run_config_on(const SimConfig& config, const ExperimentScale& scale,
                                      const trace::Trace& base, double years,
                                      bool stop_on_failure);

struct EnduranceOutcome {
  /// Years to the first worn-out block; equals the horizon when no block
  /// wore out within scale.max_years (failed == false then).
  double first_failure_years = 0.0;
  bool failed = false;
  SimResult sim;
};

/// Figure 5: run the infinite trace until the first block failure.
[[nodiscard]] EnduranceOutcome run_endurance(const ExperimentScale& scale, LayerKind layer,
                                             std::optional<wear::LevelerConfig> leveler);

/// Table 4: run the infinite trace for a fixed number of simulated years and
/// report the erase-count distribution.
[[nodiscard]] SimResult run_for_years(const ExperimentScale& scale, LayerKind layer,
                                      std::optional<wear::LevelerConfig> leveler, double years);

struct OverheadOutcome {
  /// 100 * (erases with SWL) / (erases without SWL) — Figure 6's y-axis.
  double erase_ratio_percent = 0.0;
  /// 100 * (live copies with SWL) / (live copies without SWL) — Figure 7.
  double copy_ratio_percent = 0.0;
  SimResult with_swl;
  SimResult without_swl;
};

/// Figures 6 and 7: identical workload with and without SWL for a fixed
/// number of simulated years.
[[nodiscard]] OverheadOutcome run_overhead(const ExperimentScale& scale, LayerKind layer,
                                           const wear::LevelerConfig& leveler, double years);

}  // namespace swl::sim

#endif  // SWL_SIM_EXPERIMENTS_HPP
