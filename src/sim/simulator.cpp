#include "sim/simulator.hpp"

#include "core/contracts.hpp"

namespace swl::sim {

std::string_view to_string(LayerKind k) noexcept {
  switch (k) {
    case LayerKind::ftl:
      return "FTL";
    case LayerKind::nftl:
      return "NFTL";
  }
  return "unknown";
}

Simulator::Simulator(const SimConfig& config) {
  SWL_REQUIRE(config.geometry.valid(), "invalid geometry");
  chip_ = std::make_unique<nand::NandChip>(
      nand::NandConfig{.geometry = config.geometry, .timing = config.timing,
                       .failures = config.failures},
      &clock_);
  layer_ = make_layer(config.layer, *chip_, config.ftl, config.nftl, /*mounted=*/false);
  SWL_REQUIRE(!(config.leveler.has_value() && config.oracle_leveler.has_value()),
              "choose either the SW Leveler or the oracle policy, not both");
  if (config.leveler.has_value()) {
    layer_->attach_leveler(
        std::make_unique<wear::SwLeveler>(config.geometry.block_count, *config.leveler));
  } else if (config.oracle_leveler.has_value()) {
    layer_->attach_leveler(std::make_unique<wear::OracleLeveler>(config.geometry.block_count,
                                                                 *config.oracle_leveler));
  }
}

std::uint64_t Simulator::run(trace::TraceSource& source, double max_years,
                             bool stop_on_first_failure, std::uint64_t max_records) {
  const SimTime horizon = seconds_to_us(max_years * kSecondsPerYear);
  std::uint64_t processed = 0;
  while (processed < max_records) {
    if (stop_on_first_failure && chip_->first_failure().has_value()) break;
    if (clock_.now() >= horizon) break;
    const auto rec = source.next();
    if (!rec.has_value()) break;
    if (rec->time_us >= horizon) {
      clock_.advance_to(horizon);
      break;
    }
    clock_.advance_to(rec->time_us);
    // Trace LBAs beyond the exported space (possible when replaying an
    // external trace against a smaller device) wrap around.
    const Lba lba = rec->lba % layer_->lba_count();
    if (rec->op == trace::Op::write) {
      const Status st = layer_->write(lba, next_payload_++);
      SWL_ASSERT(st == Status::ok || st == Status::out_of_space || st == Status::program_failed,
                 "unexpected write failure");
      if (st == Status::out_of_space) break;  // device full: nothing more to learn
    } else {
      std::uint64_t token = 0;
      const Status st = layer_->read(lba, &token);
      SWL_ASSERT(st == Status::ok || st == Status::lba_not_mapped, "unexpected read failure");
    }
    ++processed;
    ++records_;
  }
  return processed;
}

SimResult Simulator::result() const {
  SimResult r;
  if (const auto& f = chip_->first_failure(); f.has_value()) {
    r.first_failure_years =
        static_cast<double>(f->time_us) / static_cast<double>(kUsPerSecond) / kSecondsPerYear;
  }
  r.elapsed_years = clock_.years();
  r.records_processed = records_;
  r.erase_summary = stats::summarize(chip_->erase_counts());
  r.erase_counts = chip_->erase_counts();
  r.counters = layer_->counters();
  r.chip_counters = chip_->counters();
  if (const auto* lev = layer_->leveler(); lev != nullptr) {
    r.leveler_stats = lev->stats();
  }
  return r;
}

std::unique_ptr<Simulator> make_simulator(const SimConfig& config) {
  return std::make_unique<Simulator>(config);
}

std::unique_ptr<tl::TranslationLayer> make_layer(LayerKind kind, nand::NandChip& chip,
                                                 const ftl::FtlConfig& ftl_config,
                                                 const nftl::NftlConfig& nftl_config,
                                                 bool mounted) {
  switch (kind) {
    case LayerKind::ftl:
      return mounted ? ftl::Ftl::mount(chip, ftl_config)
                     : std::make_unique<ftl::Ftl>(chip, ftl_config);
    case LayerKind::nftl:
      return mounted ? nftl::Nftl::mount(chip, nftl_config)
                     : std::make_unique<nftl::Nftl>(chip, nftl_config);
  }
  SWL_ASSERT(false, "unknown layer kind");
  return nullptr;
}

}  // namespace swl::sim
