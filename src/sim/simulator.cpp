#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/contracts.hpp"

namespace swl::sim {

std::string_view to_string(LayerKind k) noexcept {
  switch (k) {
    case LayerKind::ftl:
      return "FTL";
    case LayerKind::nftl:
      return "NFTL";
    case LayerKind::dftl:
      return "DFTL";
  }
  return "unknown";
}

void Simulator::WearTracker::init(std::size_t blocks) {
  block_count = blocks;
  histogram.assign(1, static_cast<std::uint32_t>(blocks));  // everything at 0
}

void Simulator::WearTracker::on_erase(std::uint32_t new_count) {
  // One block just moved from new_count-1 to new_count erases.
  sum += 1;
  sum_squares += 2 * static_cast<std::uint64_t>(new_count) - 1;  // c^2 - (c-1)^2
  if (new_count >= histogram.size()) histogram.resize(new_count + 1, 0);
  --histogram[new_count - 1];
  ++histogram[new_count];
  if (new_count > max) max = new_count;
  while (histogram[min] == 0) ++min;
}

stats::Summary Simulator::WearTracker::summary() const {
  stats::Summary s;
  s.count = block_count;
  if (block_count == 0) return s;
  s.min = min;
  s.max = max;
  const auto n = static_cast<double>(block_count);
  s.mean = static_cast<double>(sum) / n;
  // Exact integer variance numerator: n*sum(c^2) - (sum c)^2 >= 0. Same
  // formula as stats::summarize, so the two agree bit for bit.
  const unsigned __int128 numerator =
      static_cast<unsigned __int128>(block_count) * sum_squares -
      static_cast<unsigned __int128>(sum) * sum;
  s.stddev = std::sqrt(static_cast<double>(numerator)) / n;
  return s;
}

Simulator::Simulator(const SimConfig& config) {
  SWL_REQUIRE(config.geometry.valid(), "invalid geometry");
  chip_ = std::make_unique<nand::NandChip>(
      nand::NandConfig{.geometry = config.geometry, .timing = config.timing,
                       .failures = config.failures,
                       // DFTL stores translation pages as byte payloads.
                       .store_payload_bytes = config.layer == LayerKind::dftl},
      &clock_);
  wear_.init(config.geometry.block_count);
  // The tracker starts from the fresh chip's all-zero counts; the token is
  // redeemed in ~Simulator.
  wear_observer_token_ = chip_->add_erase_observer(
      [this](BlockIndex, std::uint32_t count) { wear_.on_erase(count); });
  layer_ = make_layer(config.layer, *chip_, config.ftl, config.nftl, config.dftl,
                      /*mounted=*/false);
  SWL_REQUIRE(!(config.leveler.has_value() && config.oracle_leveler.has_value()),
              "choose either the SW Leveler or the oracle policy, not both");
  if (config.leveler.has_value()) {
    layer_->attach_leveler(
        std::make_unique<wear::SwLeveler>(config.geometry.block_count, *config.leveler));
  } else if (config.oracle_leveler.has_value()) {
    layer_->attach_leveler(std::make_unique<wear::OracleLeveler>(config.geometry.block_count,
                                                                 *config.oracle_leveler));
  }
  batch_.resize(kBatchCapacity);
}

Simulator::~Simulator() { chip_->remove_erase_observer(wear_observer_token_); }

std::uint64_t Simulator::run(trace::TraceSource& source, double max_years,
                             bool stop_on_first_failure, std::uint64_t max_records) {
  thread_checker_.check("Simulator::run");
  const SimTime horizon = seconds_to_us(max_years * kSecondsPerYear);
  tl::TranslationLayer& layer = *layer_;
  const Lba lba_count = layer.lba_count();
  const std::uint64_t start_records = records_;
  const auto wall_start = std::chrono::steady_clock::now();
  double source_seconds = 0.0;

  bool stop = false;
  while (!stop) {
    if (records_ - start_records >= max_records) break;
    if (batch_pos_ >= batch_len_) {
      // Refill, capped at the caller's record budget so a batch never
      // overshoots max_records (which lets the drain loop below run without
      // a per-record count check).
      if (stop_on_first_failure && chip_->first_failure().has_value()) break;
      if (clock_.now() >= horizon) break;
      const std::uint64_t budget = max_records - (records_ - start_records);
      const auto want =
          static_cast<std::size_t>(std::min<std::uint64_t>(kBatchCapacity, budget));
      const auto fill_start = std::chrono::steady_clock::now();
      batch_len_ = source.next_batch(batch_.data(), want);
      source_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - fill_start).count();
      batch_pos_ = 0;
      if (batch_len_ == 0) break;  // trace ended
      ++perf_.batches;
      perf_.batch_capacity += want;
      perf_.batch_filled += batch_len_;
      // Pre-split the LBA wrap once per batch: external traces may address
      // beyond the exported space (replaying against a smaller device), but
      // the common case is in-range, so the drain loop stays modulo-free.
      for (std::size_t i = 0; i < batch_len_; ++i) {
        if (batch_[i].lba >= lba_count) batch_[i].lba %= lba_count;
      }
    }
    // Drain: at most the caller's remaining budget (carry from an earlier
    // call can exceed the budget of this one).
    const std::uint64_t budget = max_records - (records_ - start_records);
    if (budget == 0) break;
    const std::size_t limit =
        batch_pos_ + static_cast<std::size_t>(
                         std::min<std::uint64_t>(batch_len_ - batch_pos_, budget));
    const trace::TraceRecord* const recs = batch_.data();
    for (std::size_t i = batch_pos_; i < limit; ++i) {
      // Same per-record stop conditions, in the same order, as run_serial:
      // a record is only consumed once none of them fired.
      if (stop_on_first_failure && chip_->first_failure().has_value()) {
        stop = true;
        break;
      }
      if (clock_.now() >= horizon) {
        stop = true;
        break;
      }
      const trace::TraceRecord& rec = recs[i];
      if (rec.time_us >= horizon) {
        batch_pos_ = i + 1;  // consumed (and dropped), exactly like next()
        clock_.advance_to(horizon);
        stop = true;
        break;
      }
      clock_.advance_to(rec.time_us);
      if (rec.op == trace::Op::write) {
        const Status st = layer.write_record(rec.lba, next_payload_++);
        SWL_ASSERT(st == Status::ok || st == Status::out_of_space || st == Status::program_failed,
                   "unexpected write failure");
        if (st == Status::out_of_space) {
          batch_pos_ = i + 1;  // consumed; device full: nothing more to learn
          stop = true;
          break;
        }
      } else {
        std::uint64_t token = 0;
        const Status st = layer.read_record(rec.lba, &token);
        SWL_ASSERT(st == Status::ok || st == Status::lba_not_mapped, "unexpected read failure");
      }
      batch_pos_ = i + 1;
      ++records_;
    }
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  perf_.source_seconds += source_seconds;
  perf_.replay_seconds += wall - source_seconds;
  perf_.records += records_ - start_records;
  return records_ - start_records;
}

std::uint64_t Simulator::run_serial(trace::TraceSource& source, double max_years,
                                    bool stop_on_first_failure, std::uint64_t max_records) {
  thread_checker_.check("Simulator::run_serial");
  const SimTime horizon = seconds_to_us(max_years * kSecondsPerYear);
  const std::uint64_t start_records = records_;
  while (records_ - start_records < max_records) {
    if (stop_on_first_failure && chip_->first_failure().has_value()) break;
    if (clock_.now() >= horizon) break;
    const auto rec = source.next();
    if (!rec.has_value()) break;
    if (rec->time_us >= horizon) {
      clock_.advance_to(horizon);
      break;
    }
    clock_.advance_to(rec->time_us);
    // Trace LBAs beyond the exported space (possible when replaying an
    // external trace against a smaller device) wrap around.
    const Lba lba = rec->lba % layer_->lba_count();
    if (rec->op == trace::Op::write) {
      const Status st = layer_->write(lba, next_payload_++);
      SWL_ASSERT(st == Status::ok || st == Status::out_of_space || st == Status::program_failed,
                 "unexpected write failure");
      if (st == Status::out_of_space) break;  // device full: nothing more to learn
    } else {
      std::uint64_t token = 0;
      const Status st = layer_->read(lba, &token);
      SWL_ASSERT(st == Status::ok || st == Status::lba_not_mapped, "unexpected read failure");
    }
    ++records_;
  }
  return records_ - start_records;
}

SimResult Simulator::result() const {
  SimResult r;
  if (const auto& f = chip_->first_failure(); f.has_value()) {
    r.first_failure_years =
        static_cast<double>(f->time_us) / static_cast<double>(kUsPerSecond) / kSecondsPerYear;
  }
  r.elapsed_years = clock_.years();
  r.records_processed = records_;
  r.erase_summary = wear_.summary();
  r.erase_counts = chip_->erase_counts();
  r.counters = layer_->counters();
  r.chip_counters = chip_->counters();
  if (const auto* lev = layer_->leveler(); lev != nullptr) {
    r.leveler_stats = lev->stats();
  }
  r.perf = perf_;
  return r;
}

std::unique_ptr<Simulator> make_simulator(const SimConfig& config) {
  return std::make_unique<Simulator>(config);
}

std::unique_ptr<tl::TranslationLayer> make_layer(LayerKind kind, nand::NandChip& chip,
                                                 const ftl::FtlConfig& ftl_config,
                                                 const nftl::NftlConfig& nftl_config,
                                                 const dftl::DftlConfig& dftl_config,
                                                 bool mounted) {
  switch (kind) {
    case LayerKind::ftl:
      return mounted ? ftl::Ftl::mount(chip, ftl_config)
                     : std::make_unique<ftl::Ftl>(chip, ftl_config);
    case LayerKind::nftl:
      return mounted ? nftl::Nftl::mount(chip, nftl_config)
                     : std::make_unique<nftl::Nftl>(chip, nftl_config);
    case LayerKind::dftl:
      return mounted ? dftl::Dftl::mount(chip, dftl_config)
                     : std::make_unique<dftl::Dftl>(chip, dftl_config);
  }
  SWL_ASSERT(false, "unknown layer kind");
  return nullptr;
}

}  // namespace swl::sim
