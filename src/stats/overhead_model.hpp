// Closed-form worst-case overhead models — Section 4 of the paper.
//
// The worst case (Figure 4): a flash of H+C blocks where H−1 blocks hold hot
// data updated uniformly, C blocks hold cold data erased only by static wear
// leveling, and one block is free. In each resetting interval the updates of
// hot data cause T×(H+C)−C erases while SWL-Procedure recycles the C cold
// blocks, so:
//
//   extra erase ratio  =  C / (T·(H+C) − C)            (Table 2)
//   extra copy ratio   =  C·N / ((T·(H+C) − C)·L)      (Table 3)
//
// with N pages per block and L the average number of live pages copied per
// regular GC erase. Both the exact expressions and the paper's T·(H+C) ≫ C
// approximations are provided.
#ifndef SWL_STATS_OVERHEAD_MODEL_HPP
#define SWL_STATS_OVERHEAD_MODEL_HPP

#include <cstdint>

namespace swl::stats {

struct WorstCaseParams {
  std::uint64_t hot_blocks = 0;   // H (includes the free block, as in the paper)
  std::uint64_t cold_blocks = 0;  // C
  double threshold = 100.0;       // T
  std::uint32_t pages_per_block = 128;  // N
  double live_copies_per_gc = 16.0;     // L
};

/// Exact worst-case increased ratio of block erases: C / (T(H+C) - C).
[[nodiscard]] double extra_erase_ratio(const WorstCaseParams& p);

/// The paper's approximation C / (T(H+C)), valid when T(H+C) >> C.
[[nodiscard]] double extra_erase_ratio_approx(const WorstCaseParams& p);

/// Exact worst-case increased ratio of live-page copyings:
/// C*N / ((T(H+C) - C) * L).
[[nodiscard]] double extra_copy_ratio(const WorstCaseParams& p);

/// The paper's approximation C*N / (T*L*(H+C)).
[[nodiscard]] double extra_copy_ratio_approx(const WorstCaseParams& p);

}  // namespace swl::stats

#endif  // SWL_STATS_OVERHEAD_MODEL_HPP
