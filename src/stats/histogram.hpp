// Fixed-width histogram for erase-count distributions.
#ifndef SWL_STATS_HISTOGRAM_HPP
#define SWL_STATS_HISTOGRAM_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace swl::stats {

class Histogram {
 public:
  /// Buckets [0,width), [width,2*width), ...; values beyond the last bucket
  /// land in an overflow bucket.
  Histogram(std::uint32_t bucket_width, std::size_t bucket_count);

  void add(std::uint32_t value);
  void add_all(std::span<const std::uint32_t> values);

  [[nodiscard]] std::uint32_t bucket_width() const noexcept { return width_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const;
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// ASCII rendering (one line per non-empty bucket with a proportional bar);
  /// used by examples to show erase-count distributions.
  [[nodiscard]] std::string render(std::size_t max_bar_width = 50) const;

 private:
  std::uint32_t width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace swl::stats

#endif  // SWL_STATS_HISTOGRAM_HPP
