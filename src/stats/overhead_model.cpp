#include "stats/overhead_model.hpp"

#include "core/contracts.hpp"

namespace swl::stats {

namespace {

double denominator(const WorstCaseParams& p) {
  SWL_REQUIRE(p.hot_blocks > 0 && p.cold_blocks > 0, "H and C must be positive");
  SWL_REQUIRE(p.threshold >= 1.0, "threshold T must be at least 1");
  const double total = static_cast<double>(p.hot_blocks + p.cold_blocks);
  const double d = p.threshold * total - static_cast<double>(p.cold_blocks);
  SWL_REQUIRE(d > 0.0, "degenerate worst case: T(H+C) must exceed C");
  return d;
}

}  // namespace

double extra_erase_ratio(const WorstCaseParams& p) {
  return static_cast<double>(p.cold_blocks) / denominator(p);
}

double extra_erase_ratio_approx(const WorstCaseParams& p) {
  SWL_REQUIRE(p.hot_blocks > 0 && p.cold_blocks > 0, "H and C must be positive");
  const double total = static_cast<double>(p.hot_blocks + p.cold_blocks);
  return static_cast<double>(p.cold_blocks) / (p.threshold * total);
}

double extra_copy_ratio(const WorstCaseParams& p) {
  SWL_REQUIRE(p.pages_per_block > 0, "N must be positive");
  SWL_REQUIRE(p.live_copies_per_gc > 0.0, "L must be positive");
  return static_cast<double>(p.cold_blocks) * static_cast<double>(p.pages_per_block) /
         (denominator(p) * p.live_copies_per_gc);
}

double extra_copy_ratio_approx(const WorstCaseParams& p) {
  SWL_REQUIRE(p.hot_blocks > 0 && p.cold_blocks > 0, "H and C must be positive");
  SWL_REQUIRE(p.pages_per_block > 0, "N must be positive");
  SWL_REQUIRE(p.live_copies_per_gc > 0.0, "L must be positive");
  const double total = static_cast<double>(p.hot_blocks + p.cold_blocks);
  return static_cast<double>(p.cold_blocks) * static_cast<double>(p.pages_per_block) /
         (p.threshold * p.live_copies_per_gc * total);
}

}  // namespace swl::stats
