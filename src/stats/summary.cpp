#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace swl::stats {

Summary summarize(std::span<const std::uint32_t> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  s.min = *lo;
  s.max = *hi;
  // Integer-exact accumulation (128-bit for the squares, which can exceed 64
  // bits for large u32 values): the variance numerator n*sum(v^2) - (sum v)^2
  // is then exact and non-negative, and the result matches what the
  // simulator's incremental wear tracker computes from the same sums.
  std::uint64_t sum = 0;
  unsigned __int128 sum_squares = 0;
  for (const auto v : values) {
    sum += v;
    sum_squares += static_cast<std::uint64_t>(v) * v;
  }
  const auto n = static_cast<double>(values.size());
  s.mean = static_cast<double>(sum) / n;
  const unsigned __int128 numerator =
      static_cast<unsigned __int128>(values.size()) * sum_squares -
      static_cast<unsigned __int128>(sum) * sum;
  s.stddev = std::sqrt(static_cast<double>(numerator)) / n;
  return s;
}

}  // namespace swl::stats
