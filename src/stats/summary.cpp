#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace swl::stats {

Summary summarize(std::span<const std::uint32_t> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (const auto v : values) sum += static_cast<double>(v);
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (const auto v : values) {
    const double d = static_cast<double>(v) - s.mean;
    sq += d * d;
  }
  s.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  return s;
}

}  // namespace swl::stats
