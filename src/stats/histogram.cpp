#include "stats/histogram.hpp"

#include <algorithm>
#include <sstream>

#include "core/contracts.hpp"

namespace swl::stats {

Histogram::Histogram(std::uint32_t bucket_width, std::size_t bucket_count)
    : width_(bucket_width), counts_(bucket_count, 0) {
  SWL_REQUIRE(bucket_width > 0, "bucket width must be positive");
  SWL_REQUIRE(bucket_count > 0, "need at least one bucket");
}

void Histogram::add(std::uint32_t value) {
  const std::size_t index = value / width_;
  if (index < counts_.size()) {
    ++counts_[index];
  } else {
    ++overflow_;
  }
  ++total_;
}

void Histogram::add_all(std::span<const std::uint32_t> values) {
  for (const auto v : values) add(v);
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  SWL_REQUIRE(i < counts_.size(), "bucket index out of range");
  return counts_[i];
}

std::string Histogram::render(std::size_t max_bar_width) const {
  std::ostringstream os;
  const std::uint64_t peak = std::max<std::uint64_t>(
      overflow_, counts_.empty() ? 1 : *std::max_element(counts_.begin(), counts_.end()));
  const auto bar = [&](std::uint64_t n) {
    const std::size_t len =
        peak == 0 ? 0 : static_cast<std::size_t>(n * max_bar_width / peak);
    return std::string(len, '#');
  };
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    os << '[' << i * width_ << ',' << (i + 1) * width_ << ") " << counts_[i] << ' '
       << bar(counts_[i]) << '\n';
  }
  if (overflow_ > 0) {
    os << "[>=" << counts_.size() * width_ << ") " << overflow_ << ' ' << bar(overflow_) << '\n';
  }
  return os.str();
}

}  // namespace swl::stats
