// Scalar summaries of per-block erase counts (Table 4 of the paper reports
// the average, standard deviation and maximum over all blocks).
#ifndef SWL_STATS_SUMMARY_HPP
#define SWL_STATS_SUMMARY_HPP

#include <cstdint>
#include <span>

namespace swl::stats {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  /// Population standard deviation (what an erase-count table reports).
  double stddev = 0.0;
  std::uint32_t min = 0;
  std::uint32_t max = 0;
};

[[nodiscard]] Summary summarize(std::span<const std::uint32_t> values);

}  // namespace swl::stats

#endif  // SWL_STATS_SUMMARY_HPP
