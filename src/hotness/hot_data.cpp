#include "hotness/hot_data.hpp"

#include <algorithm>
#include <bit>

#include "core/contracts.hpp"

namespace swl::hotness {

namespace {

/// SplitMix64-style mixer; `salt` derives independent hash functions.
std::uint64_t mix(std::uint64_t x, std::uint64_t salt) noexcept {
  x += 0x9E3779B97F4A7C15ULL * (salt + 1);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

HotDataIdentifier::HotDataIdentifier(HotDataConfig config)
    : config_(config), writes_until_decay_(config.decay_interval) {
  SWL_REQUIRE(config_.table_entries >= 2 && std::has_single_bit(config_.table_entries),
              "table_entries must be a power of two >= 2");
  SWL_REQUIRE(config_.hash_count >= 1 && config_.hash_count <= 8, "hash_count out of range");
  SWL_REQUIRE(config_.counter_bits >= 1 && config_.counter_bits <= 8,
              "counter_bits out of range");
  SWL_REQUIRE(config_.decay_interval >= 1, "decay_interval must be positive");
  saturation_ = static_cast<std::uint8_t>((1U << config_.counter_bits) - 1);
  SWL_REQUIRE(config_.hot_threshold >= 1 && config_.hot_threshold <= saturation_,
              "hot_threshold must fit in the counter range");
  counters_.assign(config_.table_entries, 0);
}

std::uint32_t HotDataIdentifier::slot(Lba lba, std::uint32_t hash_index) const noexcept {
  return static_cast<std::uint32_t>(mix(lba, hash_index) & (config_.table_entries - 1));
}

void HotDataIdentifier::record_write(Lba lba) {
  for (std::uint32_t h = 0; h < config_.hash_count; ++h) {
    std::uint8_t& c = counters_[slot(lba, h)];
    if (c < saturation_) ++c;
  }
  ++writes_;
  if (--writes_until_decay_ == 0) {
    decay();
    writes_until_decay_ = config_.decay_interval;
  }
}

void HotDataIdentifier::decay() noexcept {
  for (auto& c : counters_) c = static_cast<std::uint8_t>(c >> 1);
  ++decays_;
}

std::uint32_t HotDataIdentifier::min_counter(Lba lba) const {
  std::uint32_t m = saturation_;
  for (std::uint32_t h = 0; h < config_.hash_count; ++h) {
    m = std::min<std::uint32_t>(m, counters_[slot(lba, h)]);
  }
  return m;
}

bool HotDataIdentifier::is_hot(Lba lba) const { return min_counter(lba) >= config_.hot_threshold; }

std::uint64_t HotDataIdentifier::size_bytes() const noexcept {
  // One byte per counter in this implementation; a packed firmware build
  // would use counter_bits per entry, which is what we report.
  return (static_cast<std::uint64_t>(config_.table_entries) * config_.counter_bits + 7) / 8;
}

}  // namespace swl::hotness
