// On-line hot data identification — the multi-hash-function counter scheme
// of Hsieh, Chang and Kuo ("Efficient On-Line Identification of Hot Data for
// Flash-Memory Management", SAC 2005), reference [14] of the paper.
//
// A small table of saturating counters is indexed by K independent hashes of
// the LBA. A write increments the K counters; every `decay_interval` writes
// all counters decay by a right shift (exponential aging). An LBA is *hot*
// when the minimum of its K counters reaches the threshold. False positives
// are possible (hash aliasing), false negatives are not — the properties the
// original paper proves.
//
// This substrate powers the FTL's optional hot/cold data separation, which
// in turn strengthens dynamic wear leveling — letting the ablation benches
// measure the paper's claim that *static* wear leveling is orthogonal to
// dynamic-wear-leveling improvements.
#ifndef SWL_HOTNESS_HOT_DATA_HPP
#define SWL_HOTNESS_HOT_DATA_HPP

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace swl::hotness {

struct HotDataConfig {
  /// Counter-table entries; must be a power of two.
  std::uint32_t table_entries = 4096;
  /// Independent hash functions per LBA (K).
  std::uint32_t hash_count = 2;
  /// Counter width in bits; counters saturate at 2^counter_bits - 1.
  std::uint32_t counter_bits = 4;
  /// An LBA is hot when all its K counters are >= this value.
  std::uint32_t hot_threshold = 4;
  /// Writes between exponential-decay passes (counters >>= 1).
  std::uint32_t decay_interval = 4096;
};

class HotDataIdentifier {
 public:
  explicit HotDataIdentifier(HotDataConfig config);

  /// Records one write to `lba`, decaying the table when the interval ends.
  void record_write(Lba lba);

  /// Classification of `lba` given the writes recorded so far.
  [[nodiscard]] bool is_hot(Lba lba) const;

  /// Smallest of the K counters for `lba` (the classification statistic).
  [[nodiscard]] std::uint32_t min_counter(Lba lba) const;

  /// RAM footprint of the counter table in bytes.
  [[nodiscard]] std::uint64_t size_bytes() const noexcept;

  [[nodiscard]] std::uint64_t writes_recorded() const noexcept { return writes_; }
  [[nodiscard]] std::uint64_t decays_performed() const noexcept { return decays_; }
  [[nodiscard]] const HotDataConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] std::uint32_t slot(Lba lba, std::uint32_t hash_index) const noexcept;
  void decay() noexcept;

  HotDataConfig config_;
  std::uint8_t saturation_;
  std::vector<std::uint8_t> counters_;
  std::uint64_t writes_ = 0;
  std::uint64_t decays_ = 0;
  std::uint32_t writes_until_decay_;
};

}  // namespace swl::hotness

#endif  // SWL_HOTNESS_HOT_DATA_HPP
