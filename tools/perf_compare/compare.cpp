#include "perf_compare/compare.hpp"

#include <fstream>
#include <iostream>
#include <sstream>

namespace swl::perf {

namespace {

std::string fmt_value(const Point& p) {
  std::ostringstream os;
  os.precision(3);
  if (p.lower_is_better) {
    os << std::fixed << p.value << "ns";  // cost metrics are reported raw
  } else {
    os << std::fixed << p.value / 1e6 << "M/s";
  }
  return os.str();
}

}  // namespace

std::optional<PointMap> parse_points(const std::string& json_text, const std::string& label,
                                     std::ostream& err) {
  const std::optional<runner::Json> doc = runner::Json::parse(json_text);
  if (!doc.has_value()) {
    err << "perf_compare: " << label << " is not valid JSON\n";
    return std::nullopt;
  }
  const runner::Json* points = doc->find("points");
  if (points == nullptr || !points->is_array()) {
    err << "perf_compare: " << label << " has no points array\n";
    return std::nullopt;
  }
  PointMap out;
  for (std::size_t i = 0; i < points->size(); ++i) {
    const runner::Json& p = *points->at(i);
    const runner::Json* name = p.find("name");
    const runner::Json* ips = p.find("items_per_second");
    if (name == nullptr || name->string() == nullptr || ips == nullptr ||
        !ips->number().has_value()) {
      err << "perf_compare: " << label << " point " << i << " lacks name/items_per_second\n";
      return std::nullopt;
    }
    Point pt;
    pt.value = *ips->number();
    if (const runner::Json* lib = p.find("lower_is_better");
        lib != nullptr && lib->boolean().has_value()) {
      pt.lower_is_better = *lib->boolean();
    }
    pt.raw = p;
    out[*name->string()] = std::move(pt);
  }
  return out;
}

std::optional<PointMap> load_points(const std::string& path, std::ostream& err) {
  std::ifstream in(path);
  if (!in) {
    err << "perf_compare: cannot open " << path << "\n";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_points(buf.str(), path, err);
}

bool better(const Point& point, double a, double b) {
  return point.lower_is_better ? a < b : a > b;
}

PointMap merge_point_maps(const std::vector<PointMap>& inputs) {
  PointMap best;
  for (const PointMap& points : inputs) {
    for (const auto& [name, pt] : points) {
      const auto it = best.find(name);
      if (it == best.end() || better(pt, pt.value, it->second.value)) {
        best[name] = pt;
      }
    }
  }
  return best;
}

double normalized_ratio(const Point& base, const Point& current, double speed) {
  if (base.lower_is_better) {
    // A faster machine lowers a cost metric for free, so normalization
    // scales the current cost *up* by the speed factor; the ratio then reads
    // "how much of the baseline's (normalized) cost budget do we use".
    const double normalized = current.value * speed;
    return normalized > 0.0 ? base.value / normalized : 0.0;
  }
  return base.value > 0.0 ? (current.value / speed) / base.value : 0.0;
}

std::optional<double> speed_factor(const PointMap& baseline, const PointMap& current,
                                   std::ostream& err) {
  const auto base_cal = baseline.find("calibrate");
  const auto cur_cal = current.find("calibrate");
  if (base_cal == baseline.end() || cur_cal == current.end() || base_cal->second.value <= 0.0 ||
      cur_cal->second.value <= 0.0) {
    err << "perf_compare: both sides need a positive `calibrate` point\n";
    return std::nullopt;
  }
  return cur_cal->second.value / base_cal->second.value;
}

int compare(const PointMap& baseline, const PointMap& current, double threshold,
            std::ostream& out, std::ostream& err) {
  const std::optional<double> speed = speed_factor(baseline, current, err);
  if (!speed.has_value()) return 2;
  out << "machine speed vs baseline host: " << fmt_value(current.at("calibrate")) << " / "
      << fmt_value(baseline.at("calibrate")) << " = ";
  out.precision(3);
  out << std::fixed << *speed << "x\n\n";

  bool failed = false;
  out << "  benchmark                 baseline      current   normalized  verdict\n";
  for (const auto& [name, base] : baseline) {
    if (name == "calibrate") continue;
    const auto it = current.find(name);
    if (it == current.end()) {
      out << "  " << name << ": MISSING from current run\n";
      failed = true;
      continue;
    }
    const double ratio = normalized_ratio(base, it->second, *speed);
    const bool regressed = ratio < 1.0 - threshold;
    failed = failed || regressed;
    out << "  ";
    out.width(22);
    out << std::left << name << std::right;
    out.width(13);
    out << fmt_value(base);
    out.width(13);
    out << fmt_value(it->second);
    out.width(12);
    out.precision(3);
    out << std::fixed << ratio;
    out << (regressed ? "  REGRESSED" : "  ok") << (base.lower_is_better ? "  [lower-is-better]" : "")
        << "\n";
  }
  for (const auto& [name, pt] : current) {
    if (baseline.find(name) == baseline.end()) {
      out << "  " << name << ": new benchmark (" << fmt_value(pt) << "), not gated\n";
    }
  }

  out << "\nperf gate: "
      << (failed ? "FAIL (normalized metric regressed beyond " : "ok (threshold ")
      << threshold * 100.0 << "%)\n";
  return failed ? 1 : 0;
}

bool ratchet_allows(const PointMap& old_baseline, const PointMap& candidate, double threshold,
                    std::ostream& out, std::ostream& err) {
  const std::optional<double> speed = speed_factor(old_baseline, candidate, err);
  if (!speed.has_value()) return false;
  bool ok = true;
  for (const auto& [name, base] : old_baseline) {
    if (name == "calibrate") continue;
    const auto it = candidate.find(name);
    if (it == candidate.end()) {
      out << "  ratchet: " << name << " MISSING from new baseline\n";
      ok = false;
      continue;
    }
    const double ratio = normalized_ratio(base, it->second, *speed);
    if (ratio < 1.0 - threshold) {
      out << "  ratchet: " << name << " would regress to ";
      out.precision(3);
      out << std::fixed << ratio << "x normalized (" << fmt_value(base) << " -> "
          << fmt_value(it->second) << ")\n";
      ok = false;
    }
  }
  return ok;
}

runner::Json merged_artifact(PointMap points, std::size_t input_count) {
  runner::Json doc = runner::Json::object();
  doc.set("bench", "micro");
  doc.set("merged_from", static_cast<std::uint64_t>(input_count));
  runner::Json arr = runner::Json::array();
  for (auto& [name, pt] : points) arr.push(std::move(pt.raw));
  doc.set("points", std::move(arr));
  return doc;
}

}  // namespace swl::perf
