// Core logic of the perf-regression comparator (tools/perf_compare), split
// from the CLI so tests/tools can drive it on in-memory artifacts.
//
// An artifact is bench_micro --json output: {bench, points:[{name, items,
// seconds, items_per_second, ...}]}. Machine speed is normalized away via
// the `calibrate` point (pure-ALU spin). Two metric directions exist:
//
//   higher-is-better (default)     items_per_second is a throughput;
//                                  normalized = current / speed
//   lower-is-better                the point carries "lower_is_better": true
//                                  and items_per_second holds a cost metric
//                                  (e.g. p99 latency in ns); a faster
//                                  machine shrinks it, so the normalization
//                                  *multiplies*: normalized = current * speed
//
// Both directions share one gate formula via normalized_ratio(): ratio >= 1
// means at-least-as-good, and `ratio < 1 - threshold` is a regression.
#ifndef SWL_TOOLS_PERF_COMPARE_COMPARE_HPP
#define SWL_TOOLS_PERF_COMPARE_COMPARE_HPP

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "runner/json.hpp"

namespace swl::perf {

struct Point {
  /// The gated metric (the point's items_per_second field) — a throughput
  /// for higher-is-better points, a cost (latency) for lower-is-better ones.
  double value = 0.0;
  bool lower_is_better = false;
  runner::Json raw;  // the full point object, for merge output
};

using PointMap = std::map<std::string, Point>;

/// Parses an artifact's points. `label` names the source in diagnostics
/// (written to `err`). std::nullopt on malformed input.
[[nodiscard]] std::optional<PointMap> parse_points(const std::string& json_text,
                                                   const std::string& label, std::ostream& err);

/// parse_points over a file.
[[nodiscard]] std::optional<PointMap> load_points(const std::string& path, std::ostream& err);

/// True when metric value `a` beats `b` in the point's direction.
[[nodiscard]] bool better(const Point& point, double a, double b);

/// Per-benchmark best across the inputs (direction-aware), the merge rule
/// behind --merge and --update-baseline.
[[nodiscard]] PointMap merge_point_maps(const std::vector<PointMap>& inputs);

/// The gate quantity: >= 1.0 means the current run is at least as good as
/// the baseline after normalizing machine speed (speed = current calibrate /
/// baseline calibrate). Direction comes from the baseline point.
[[nodiscard]] double normalized_ratio(const Point& base, const Point& current, double speed);

/// Extracts the calibrate-based speed factor from two maps; std::nullopt
/// (with a diagnostic on `err`) when either side lacks a positive calibrate.
[[nodiscard]] std::optional<double> speed_factor(const PointMap& baseline,
                                                 const PointMap& current, std::ostream& err);

/// The compare-mode verdict table. Returns the process exit code: 0 ok,
/// 1 regression (or a baseline point missing from current), 2 bad input.
[[nodiscard]] int compare(const PointMap& baseline, const PointMap& current, double threshold,
                          std::ostream& out, std::ostream& err);

/// The --ratchet check: every benchmark of the old baseline must survive in
/// the candidate at `ratio >= 1 - threshold`. Diagnostics go to `out`.
[[nodiscard]] bool ratchet_allows(const PointMap& old_baseline, const PointMap& candidate,
                                  double threshold, std::ostream& out, std::ostream& err);

/// Serializes a merged artifact document ({bench, merged_from, points}).
[[nodiscard]] runner::Json merged_artifact(PointMap points, std::size_t input_count);

}  // namespace swl::perf

#endif  // SWL_TOOLS_PERF_COMPARE_COMPARE_HPP
