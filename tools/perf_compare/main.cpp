// Perf-regression comparator for the bench_micro artifact (CLI; the logic
// lives in compare.cpp so tests can exercise it without process spawning).
//
// Compare mode (the CI gate):
//
//   perf_compare BASELINE.json CURRENT.json [--max-regression PCT]
//
// Both files are bench_micro --json output. The comparator normalizes for
// machine speed using the `calibrate` point — a pure-ALU spin whose
// throughput tracks the host, not the code under test — then fails (exit 1)
// when any benchmark present in the baseline regressed by more than the
// threshold (default 15%) after normalization. Points marked
// "lower_is_better": true (latency metrics such as host_qd1_p99_ns) gate in
// the opposite direction: the current value, scaled *up* by the machine
// speed factor, must not exceed the baseline by more than the threshold.
//
// Benchmarks missing from the current run fail the gate (a silently dropped
// benchmark is not a pass); new benchmarks only in the current run are
// reported and ignored. Exit codes: 0 ok, 1 regression, 2 usage/bad input.
//
// Merge mode:
//
//   perf_compare --merge OUT.json IN1.json IN2.json [IN3.json ...]
//
// Writes an artifact holding, per benchmark, the best point across the
// inputs (highest throughput, or lowest cost for lower-is-better points).
// Process-level effects (address-space layout, transparent huge pages) make
// individual invocations of a benchmark differ far more than repetitions
// inside one process, so both the committed baseline and the CI measurement
// are best-of-several *invocations*, merged with this mode, before being
// compared.
//
// Baseline-update mode:
//
//   perf_compare --update-baseline BASELINE.json IN1.json [IN2.json ...]
//                [--ratchet] [--max-regression PCT]
//
// One-command re-baseline: merges the inputs (best-of per benchmark, same
// rule as --merge) and writes the result over BASELINE.json. With
// --ratchet the write is refused (exit 1) when any benchmark already in the
// old baseline would regress beyond the threshold after calibrate
// normalization — the baseline may only move sideways-or-up, so an
// accidental re-baseline cannot launder a real regression. A missing or
// unreadable old baseline is not an error: the first baseline has nothing
// to ratchet against.
//
// After an intentional perf change, re-baseline by committing a fresh
// merged artifact as bench/BENCH_micro.json (see README).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "perf_compare/compare.hpp"

namespace {

using swl::perf::PointMap;

int write_artifact(const std::string& out_path, PointMap points, std::size_t input_count) {
  const swl::runner::Json doc = swl::perf::merged_artifact(std::move(points), input_count);
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "perf_compare: cannot write " << out_path << "\n";
    return 2;
  }
  out << doc.dump() << "\n";
  std::cout << "merged " << input_count << " artifact(s) into " << out_path << "\n";
  return 0;
}

std::optional<PointMap> merge_inputs(const std::vector<std::string>& inputs) {
  std::vector<PointMap> maps;
  maps.reserve(inputs.size());
  for (const std::string& path : inputs) {
    auto points = swl::perf::load_points(path, std::cerr);
    if (!points.has_value()) return std::nullopt;
    maps.push_back(std::move(*points));
  }
  return swl::perf::merge_point_maps(maps);
}

int merge(const std::string& out_path, const std::vector<std::string>& inputs) {
  auto best = merge_inputs(inputs);
  if (!best.has_value()) return 2;
  return write_artifact(out_path, std::move(*best), inputs.size());
}

int update_baseline(const std::string& baseline_path, const std::vector<std::string>& inputs,
                    bool ratchet, double threshold) {
  auto best = merge_inputs(inputs);
  if (!best.has_value()) return 2;
  if (ratchet) {
    // Swallow load errors on purpose: the first-ever baseline (or one from a
    // pre-gate era) has nothing to ratchet against.
    std::ifstream probe(baseline_path);
    if (probe) {
      probe.close();
      std::ostringstream sink;
      const auto old_baseline = swl::perf::load_points(baseline_path, sink);
      if (old_baseline.has_value() &&
          !swl::perf::ratchet_allows(*old_baseline, *best, threshold, std::cout, std::cerr)) {
        std::cerr << "perf_compare: refusing to update " << baseline_path
                  << " — existing baseline point(s) would regress beyond " << threshold * 100.0
                  << "% (rerun without --ratchet to force)\n";
        return 1;
      }
    } else {
      std::cout << "no existing baseline at " << baseline_path << "; nothing to ratchet\n";
    }
  }
  return write_artifact(baseline_path, std::move(*best), inputs.size());
}

int compare_files(const std::string& baseline_path, const std::string& current_path,
                  double threshold) {
  const auto baseline = swl::perf::load_points(baseline_path, std::cerr);
  const auto current = swl::perf::load_points(current_path, std::cerr);
  if (!baseline.has_value() || !current.has_value()) return 2;
  return swl::perf::compare(*baseline, *current, threshold, std::cout, std::cerr);
}

void usage(std::ostream& os) {
  os << "usage: perf_compare BASELINE.json CURRENT.json [--max-regression 0.15]\n"
        "       perf_compare --merge OUT.json IN1.json IN2.json [...]\n"
        "       perf_compare --update-baseline BASELINE.json IN1.json [IN2.json ...]\n"
        "                    [--ratchet] [--max-regression 0.15]\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double threshold = 0.15;
  bool merge_mode = false;
  bool update_mode = false;
  bool ratchet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-regression") {
      if (i + 1 >= argc) {
        std::cerr << "--max-regression needs a value (fraction, e.g. 0.15)\n";
        return 2;
      }
      try {
        threshold = std::stod(argv[++i]);
      } catch (const std::logic_error&) {
        std::cerr << "invalid --max-regression value\n";
        return 2;
      }
      if (threshold <= 0.0 || threshold >= 1.0) {
        std::cerr << "--max-regression must be in (0, 1)\n";
        return 2;
      }
    } else if (arg == "--merge") {
      merge_mode = true;
    } else if (arg == "--update-baseline") {
      update_mode = true;
    } else if (arg == "--ratchet") {
      ratchet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (merge_mode && update_mode) {
    std::cerr << "--merge and --update-baseline are mutually exclusive\n";
    return 2;
  }
  if (ratchet && !update_mode) {
    std::cerr << "--ratchet only applies to --update-baseline\n";
    return 2;
  }
  if (merge_mode) {
    if (paths.size() < 3) {
      usage(std::cerr);
      return 2;
    }
    return merge(paths[0], std::vector<std::string>(paths.begin() + 1, paths.end()));
  }
  if (update_mode) {
    if (paths.size() < 2) {
      usage(std::cerr);
      return 2;
    }
    return update_baseline(paths[0], std::vector<std::string>(paths.begin() + 1, paths.end()),
                           ratchet, threshold);
  }
  if (paths.size() != 2) {
    usage(std::cerr);
    return 2;
  }
  return compare_files(paths[0], paths[1], threshold);
}
