#!/usr/bin/env sh
# Run the flash-semantics linter the way CI does.
#
#   tools/run_lint.sh [extra flash_lint args...]
#
# Configures the release preset if needed (for compile_commands.json), builds
# the flash_lint target, and lints every translation unit listed in the
# compile database plus all headers under the default roots. Any extra
# arguments are forwarded — e.g.:
#
#   tools/run_lint.sh --json            # machine-readable findings
#   tools/run_lint.sh --fix-hints       # per-rule remediation hints
#   tools/run_lint.sh --list-rules      # rule table + default allowlists
#
# Exit status: 0 clean, 1 findings, 2 usage/IO error (flash_lint's contract).
set -eu

repo_root="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
build_dir="$repo_root/build"

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
  cmake --preset release -S "$repo_root" >/dev/null
fi
cmake --build "$build_dir" --target flash_lint -j "$(nproc)" >/dev/null

exec "$build_dir/tools/flash_lint" \
  --root "$repo_root" \
  --compile-commands "$build_dir/compile_commands.json" \
  "$@"
