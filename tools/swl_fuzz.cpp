// Differential fuzzing driver for the translation-layer stack (src/model).
//
// Modes:
//
//   swl_fuzz --seed S [--layer ftl|nftl|dftl]
//       Generate and run the schedule of one seed; print its fingerprint
//       (bit-stable across runs and machines).
//
//   swl_fuzz --runs N [--seed-base S] [--layer ftl|nftl|dftl]
//       Run N consecutive seeds.
//
//   swl_fuzz --fuzz-smoke [--runs N] [--time-box-s T] [--seed-base S]
//       CI mode: run up to N schedules (default 240), rotating the
//       translation layer by seed so FTL, NFTL and DFTL are all covered,
//       with a soft wall-clock box (default 300 s) honored only after a
//       minimum of 200 schedules.
//
//   swl_fuzz --dftl-smoke [--runs N] [--time-box-s T] [--seed-base S]
//       CI mode pinning every schedule to DFTL (default 150 runs, soft time
//       box honored after 100): the flash-resident map, CMT eviction /
//       write-back batching, translation-block GC and mount recovery all
//       cross-checked against the RefDftl oracle, including crash bursts.
//
//   swl_fuzz --array-smoke [--runs N] [--time-box-s T] [--seed-base S]
//       CI mode for the multi-chip array: run up to N seeded array checks
//       (default 40) with the RefArrayWear oracle verifying every
//       coordinator decision and per-chip BET, each seed at jobs 1, 2 and 4
//       with fingerprints compared across worker counts. Soft time box
//       (default 300 s) honored after a minimum of 20 seeds.
//
//   swl_fuzz --host-smoke [--runs N] [--time-box-s T] [--seed-base S]
//       CI mode for the host front-end: run up to N seeded scheduler checks
//       (default 60) driving concurrent client threads through the queue-pair
//       API and cross-checking final content against a direct serial
//       BlockDevice oracle and a shadow map; serial-shaped seeds additionally
//       require bit-identical counters and erase counts. Soft time box
//       (default 300 s) honored after a minimum of 30 seeds.
//
//   swl_fuzz --replay FILE
//       Re-run a saved schedule file.
//
//   swl_fuzz --minimize FILE [--out FILE]
//       Shrink a failing schedule file (default output: FILE.min).
//
//   --inject-bug skip-betupdate   deliberately drop one SWL-BETUpdate on the
//                                 fast stack — the harness must catch it
//                                 (self-test of the oracles' teeth).
//   --inject-bug skip-cmt-writeback
//                                 deliberately drop one DFTL CMT write-back
//                                 on the fast stack (use with --layer dftl);
//                                 the harness must catch it.
//   --fail-dir DIR                where failing schedules are written
//                                 (default: current directory).
//
// On divergence the failing schedule is written to
// <fail-dir>/swl_fuzz_failure_<label>.schedule, minimized, the minimized
// reproducer written next to it as .min, and the exit code is 1. Exit 2 is a
// usage error.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "host/smoke.hpp"
#include "model/fuzz.hpp"
#include "model/ref_array.hpp"

namespace {

using swl::model::FuzzOptions;
using swl::model::FuzzOutcome;
using swl::model::FuzzSchedule;

struct Cli {
  std::optional<std::uint64_t> seed;
  std::uint64_t runs = 0;
  std::uint64_t seed_base = 1;
  bool fuzz_smoke = false;
  bool dftl_smoke = false;
  bool array_smoke = false;
  bool host_smoke = false;
  double time_box_s = 300.0;
  std::string replay_file;
  std::string minimize_file;
  std::string out_file;
  std::string fail_dir = ".";
  std::optional<swl::sim::LayerKind> layer;
  FuzzOptions options;
};

int usage() {
  std::cerr << "usage: swl_fuzz --seed S | --runs N [--seed-base S] | --fuzz-smoke\n"
               "                [--layer ftl|nftl|dftl] [--time-box-s T] [--fail-dir DIR]\n"
               "                [--inject-bug skip-betupdate|skip-cmt-writeback]\n"
               "       swl_fuzz --dftl-smoke [--runs N] [--seed-base S] [--time-box-s T]\n"
               "       swl_fuzz --array-smoke [--runs N] [--seed-base S] [--time-box-s T]\n"
               "       swl_fuzz --host-smoke [--runs N] [--seed-base S] [--time-box-s T]\n"
               "       swl_fuzz --replay FILE\n"
               "       swl_fuzz --minimize FILE [--out FILE]\n";
  return 2;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  std::istringstream is(s);
  is >> *out;
  return !is.fail() && is.eof();
}

bool parse_double(const std::string& s, double* out) {
  std::istringstream is(s);
  is >> *out;
  return !is.fail() && is.eof();
}

std::optional<FuzzSchedule> load_schedule(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "swl_fuzz: cannot open " << path << "\n";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  FuzzSchedule schedule;
  std::string error;
  if (!swl::model::deserialize(buf.str(), &schedule, &error)) {
    std::cerr << "swl_fuzz: " << path << ": " << error << "\n";
    return std::nullopt;
  }
  return schedule;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  out.flush();
  if (!out) {
    std::cerr << "swl_fuzz: cannot write " << path << "\n";
    return false;
  }
  return true;
}

/// Saves a failing schedule, minimizes it, saves the reproducer. Returns the
/// process exit code (always 1: a divergence was found).
int report_failure(const Cli& cli, const FuzzSchedule& schedule, const FuzzOutcome& outcome,
                   const std::string& label) {
  std::cerr << "DIVERGENCE at step " << outcome.failing_step << ": " << outcome.message << "\n";
  const std::string base = cli.fail_dir + "/swl_fuzz_failure_" + label + ".schedule";
  if (write_file(base, swl::model::serialize(schedule))) {
    std::cerr << "failing schedule written to " << base << "\n";
  }
  const swl::model::MinimizeResult min = swl::model::minimize(schedule, cli.options);
  std::cerr << "minimized to " << min.schedule.steps.size() << " step(s) in " << min.runs
            << " runs: " << min.outcome.message << "\n";
  if (write_file(base + ".min", swl::model::serialize(min.schedule))) {
    std::cerr << "minimized reproducer written to " << base << ".min\n";
  }
  return 1;
}

int run_one(const Cli& cli, std::uint64_t seed) {
  const FuzzSchedule schedule = swl::model::generate_schedule(seed, cli.layer);
  const FuzzOutcome outcome = swl::model::run_schedule(schedule, cli.options);
  if (!outcome.ok) {
    std::cerr << "seed " << seed << ": ";
    return report_failure(cli, schedule, outcome, std::to_string(seed));
  }
  std::cout << "seed " << seed << ": ok, " << schedule.steps.size() << " steps, fingerprint "
            << std::hex << outcome.fingerprint << std::dec << ", fast-path writes "
            << outcome.fast_path_writes << "\n";
  return 0;
}

int run_many(const Cli& cli, std::uint64_t runs, bool smoke, std::uint64_t smoke_minimum) {
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t done = 0;
  std::uint64_t ftl_runs = 0;
  std::uint64_t nftl_runs = 0;
  std::uint64_t dftl_runs = 0;
  for (std::uint64_t i = 0; i < runs; ++i) {
    const std::uint64_t seed = cli.seed_base + i;
    Cli per_run = cli;
    if (smoke && !per_run.layer.has_value()) {
      // Rotate the layer by index so a time-boxed run still covers all three.
      constexpr swl::sim::LayerKind kRotation[3] = {
          swl::sim::LayerKind::ftl, swl::sim::LayerKind::nftl, swl::sim::LayerKind::dftl};
      per_run.layer = kRotation[i % 3];
    }
    const FuzzSchedule schedule = swl::model::generate_schedule(seed, per_run.layer);
    const FuzzOutcome outcome = swl::model::run_schedule(schedule, cli.options);
    if (!outcome.ok) {
      std::cerr << "seed " << seed << ": ";
      return report_failure(cli, schedule, outcome, std::to_string(seed));
    }
    ++done;
    if (schedule.params.layer == swl::sim::LayerKind::ftl) {
      ++ftl_runs;
    } else if (schedule.params.layer == swl::sim::LayerKind::nftl) {
      ++nftl_runs;
    } else {
      ++dftl_runs;
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (smoke && done >= smoke_minimum && elapsed > cli.time_box_s) break;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  std::cout << done << " schedule(s) ok (" << ftl_runs << " FTL, " << nftl_runs << " NFTL, "
            << dftl_runs << " DFTL) in " << elapsed << " s\n";
  return 0;
}

// Array-scale smoke: every seed runs the oracle-checked mini array
// experiment once per worker count — any oracle divergence or any
// jobs-dependent fingerprint fails the run. Reproduce a failing seed with
// the printed seed number (the whole experiment derives from it).
int run_array_smoke(const Cli& cli, std::uint64_t runs) {
  constexpr std::uint64_t kSmokeMinimum = 20;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t done = 0;
  std::uint64_t migrations = 0;
  for (std::uint64_t i = 0; i < runs; ++i) {
    const std::uint64_t seed = cli.seed_base + i;
    const swl::model::ArrayCheckResult base = swl::model::run_array_check(seed, /*jobs=*/1);
    if (!base.passed) {
      std::cerr << "array seed " << seed << " (jobs 1): " << base.message << "\n";
      return 1;
    }
    for (const std::uint32_t jobs : {2u, 4u}) {
      const swl::model::ArrayCheckResult r = swl::model::run_array_check(seed, jobs);
      if (!r.passed) {
        std::cerr << "array seed " << seed << " (jobs " << jobs << "): " << r.message << "\n";
        return 1;
      }
      if (r.fingerprint != base.fingerprint) {
        std::cerr << "array seed " << seed << ": fingerprint depends on worker count (jobs 1: "
                  << std::hex << base.fingerprint << ", jobs " << std::dec << jobs << ": "
                  << std::hex << r.fingerprint << std::dec << ")\n";
        return 1;
      }
    }
    ++done;
    migrations += base.migrations;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (done >= kSmokeMinimum && elapsed > cli.time_box_s) break;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  std::cout << done << " array seed(s) ok at jobs {1,2,4}, " << migrations
            << " coordinator migration(s) exercised, in " << elapsed << " s\n";
  return 0;
}

// Host front-end smoke: every seed stands up a sharded scheduler plus a
// direct serial oracle and diffs them after concurrent client traffic (see
// src/host/smoke.hpp for what each seed checks). Reproduce a failure with
// the printed seed number.
int run_host_smoke(const Cli& cli, std::uint64_t runs) {
  constexpr std::uint64_t kSmokeMinimum = 30;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t done = 0;
  std::uint64_t strict = 0;
  std::uint64_t ops = 0;
  for (std::uint64_t i = 0; i < runs; ++i) {
    const std::uint64_t seed = cli.seed_base + i;
    const swl::host::HostCheckResult r = swl::host::run_host_check(seed);
    if (!r.passed) {
      std::cerr << "host seed " << seed << " (" << r.shards << " shard(s), " << r.clients
                << " client(s), coalesce " << (r.coalesce ? "on" : "off")
                << "): " << r.message << "\n";
      return 1;
    }
    ++done;
    if (r.serial_strict) ++strict;
    ops += r.ops;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (done >= kSmokeMinimum && elapsed > cli.time_box_s) break;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  std::cout << done << " host seed(s) ok (" << strict << " serial-strict), " << ops
            << " request(s) exercised, in " << elapsed << " s\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= args.size()) return std::nullopt;
      return args[++i];
    };
    if (arg == "--seed") {
      std::uint64_t s = 0;
      const auto v = value();
      if (!v || !parse_u64(*v, &s)) return usage();
      cli.seed = s;
    } else if (arg == "--runs") {
      const auto v = value();
      if (!v || !parse_u64(*v, &cli.runs)) return usage();
    } else if (arg == "--seed-base") {
      const auto v = value();
      if (!v || !parse_u64(*v, &cli.seed_base)) return usage();
    } else if (arg == "--fuzz-smoke") {
      cli.fuzz_smoke = true;
    } else if (arg == "--dftl-smoke") {
      cli.dftl_smoke = true;
    } else if (arg == "--array-smoke") {
      cli.array_smoke = true;
    } else if (arg == "--host-smoke") {
      cli.host_smoke = true;
    } else if (arg == "--time-box-s") {
      const auto v = value();
      if (!v || !parse_double(*v, &cli.time_box_s)) return usage();
    } else if (arg == "--replay") {
      const auto v = value();
      if (!v) return usage();
      cli.replay_file = *v;
    } else if (arg == "--minimize") {
      const auto v = value();
      if (!v) return usage();
      cli.minimize_file = *v;
    } else if (arg == "--out") {
      const auto v = value();
      if (!v) return usage();
      cli.out_file = *v;
    } else if (arg == "--fail-dir") {
      const auto v = value();
      if (!v) return usage();
      cli.fail_dir = *v;
    } else if (arg == "--layer") {
      const auto v = value();
      if (!v) return usage();
      if (*v == "ftl") {
        cli.layer = swl::sim::LayerKind::ftl;
      } else if (*v == "nftl") {
        cli.layer = swl::sim::LayerKind::nftl;
      } else if (*v == "dftl") {
        cli.layer = swl::sim::LayerKind::dftl;
      } else {
        return usage();
      }
    } else if (arg == "--inject-bug") {
      const auto v = value();
      if (!v) return usage();
      if (*v == "skip-betupdate") {
        cli.options.inject = FuzzOptions::Inject::skip_bet_update;
      } else if (*v == "skip-cmt-writeback") {
        cli.options.inject = FuzzOptions::Inject::skip_cmt_writeback;
      } else {
        return usage();
      }
    } else {
      return usage();
    }
  }

  if (!cli.replay_file.empty()) {
    const auto schedule = load_schedule(cli.replay_file);
    if (!schedule) return 2;
    const FuzzOutcome outcome = swl::model::run_schedule(*schedule, cli.options);
    if (!outcome.ok) {
      std::cerr << "replay " << cli.replay_file << ": ";
      return report_failure(cli, *schedule, outcome, "replay");
    }
    std::cout << "replay " << cli.replay_file << ": ok, fingerprint " << std::hex
              << outcome.fingerprint << std::dec << "\n";
    return 0;
  }

  if (!cli.minimize_file.empty()) {
    const auto schedule = load_schedule(cli.minimize_file);
    if (!schedule) return 2;
    const swl::model::MinimizeResult min = swl::model::minimize(*schedule, cli.options);
    if (min.outcome.ok) {
      std::cout << cli.minimize_file << " passes; nothing to minimize\n";
      return 0;
    }
    const std::string out = cli.out_file.empty() ? cli.minimize_file + ".min" : cli.out_file;
    if (!write_file(out, swl::model::serialize(min.schedule))) return 2;
    std::cout << "minimized " << cli.minimize_file << " to " << min.schedule.steps.size()
              << " step(s) in " << min.runs << " runs -> " << out << "\n"
              << "failure: " << min.outcome.message << "\n";
    return 1;  // the schedule (still) fails; surface that to scripts
  }

  if (cli.fuzz_smoke) {
    const std::uint64_t runs = cli.runs != 0 ? cli.runs : 240;
    return run_many(cli, runs, /*smoke=*/true, /*smoke_minimum=*/200);
  }
  if (cli.dftl_smoke) {
    Cli dftl_cli = cli;
    dftl_cli.layer = swl::sim::LayerKind::dftl;
    const std::uint64_t runs = cli.runs != 0 ? cli.runs : 150;
    return run_many(dftl_cli, runs, /*smoke=*/true, /*smoke_minimum=*/100);
  }
  if (cli.array_smoke) {
    const std::uint64_t runs = cli.runs != 0 ? cli.runs : 40;
    return run_array_smoke(cli, runs);
  }
  if (cli.host_smoke) {
    const std::uint64_t runs = cli.runs != 0 ? cli.runs : 60;
    return run_host_smoke(cli, runs);
  }
  if (cli.seed.has_value()) return run_one(cli, *cli.seed);
  if (cli.runs != 0) return run_many(cli, cli.runs, /*smoke=*/false, /*smoke_minimum=*/0);
  return usage();
}
