// swl_sim — command-line front end to the whole simulation stack.
//
// Runs a workload (synthetic or from a trace file) against FTL or NFTL on a
// simulated NAND device, optionally with the SW Leveler (or the oracle
// comparison policy) attached, and reports endurance and overhead metrics.
//
//   swl_sim --layer nftl --swl --T 100 --k 0 --until-failure
//   swl_sim --layer ftl --years 0.05 --alloc lifo --histogram
//   swl_sim --layer nftl --trace mytrace.bin --swl --csv
//   swl_sim --help
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "fault/recovery.hpp"
#include "runner/sweep_runner.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"
#include "stats/histogram.hpp"
#include "trace/segment_replay.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace swl;

struct CliOptions {
  sim::ExperimentScale scale;
  sim::LayerKind layer = sim::LayerKind::nftl;
  bool use_swl = false;
  bool use_oracle = false;
  std::uint32_t k = 0;
  double threshold = 100.0;
  bool scale_threshold = true;
  tl::AllocPolicy alloc = tl::AllocPolicy::fifo;
  tl::VictimPolicy victim = tl::VictimPolicy::greedy_cyclic;
  bool separation = false;
  bool until_failure = false;
  double years = 0.02;
  std::string trace_path;
  trace::WorkloadPreset preset = trace::WorkloadPreset::desktop;
  bool histogram = false;
  bool csv = false;
  double program_fail_p = 0.0;
  double erase_fail_p = 0.0;
  bool crash_sweep = false;
  std::uint64_t crash_writes = 120;
  unsigned jobs = 0;
};

void print_help() {
  std::cout <<
      R"(swl_sim — static wear leveling simulator (DAC 2007 reproduction)

device
  --layer ftl|nftl|dftl   translation layer (default nftl)
  --blocks N              physical blocks (default 256; paper: 4096)
  --endurance N           erase endurance (default 1000; paper: 10000)
  --alloc fifo|lifo|coldest  free-block allocation policy (default fifo)
  --victim greedy|cost-benefit  GC victim selection (default greedy)
  --separation            FTL hot/cold data separation
  --program-fail-p P      injected program-failure probability
  --erase-fail-p P        injected erase-failure probability

wear leveling
  --swl                   attach the SW Leveler
  --T X                   unevenness threshold (paper values; default 100)
  --k K                   BET mapping mode, one flag per 2^k blocks (default 0)
  --raw-threshold         do not scale T with endurance
  --oracle                attach the full-counter oracle policy instead

workload
  --trace FILE            replay a binary trace file (see trace_io.hpp)
  --workload NAME         synthetic preset: desktop (paper-calibrated,
                          default), server, sequential_fill, uniform_random
  --trace-days D          synthetic base-trace length in days (default 4)
  --seed S                workload seed
  --years Y               simulate Y years (default 0.02)
  --until-failure         run until the first block wears out

fault injection
  --crash-sweep           cut power at every persistent-operation boundary of
                          a scripted workload, recover, verify invariants
  --crash-writes N        host writes in the crash-sweep workload (default 120)
  --jobs N                sweep worker threads (0 = hardware concurrency,
                          1 = serial; results are identical at any N)

output
  --histogram             print the erase-count histogram
  --csv                   machine-readable one-line summary
)";
}

std::optional<CliOptions> parse(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_help();
      std::exit(0);
    } else if (arg == "--layer") {
      const std::string v = value();
      if (v == "ftl") {
        opt.layer = sim::LayerKind::ftl;
      } else if (v == "nftl") {
        opt.layer = sim::LayerKind::nftl;
      } else if (v == "dftl") {
        opt.layer = sim::LayerKind::dftl;
      } else {
        std::cerr << "unknown layer: " << v << "\n";
        return std::nullopt;
      }
    } else if (arg == "--blocks") {
      opt.scale.block_count = static_cast<BlockIndex>(std::stoul(value()));
    } else if (arg == "--endurance") {
      opt.scale.endurance = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (arg == "--alloc") {
      const std::string v = value();
      if (v == "fifo") {
        opt.alloc = tl::AllocPolicy::fifo;
      } else if (v == "lifo") {
        opt.alloc = tl::AllocPolicy::lifo;
      } else if (v == "coldest") {
        opt.alloc = tl::AllocPolicy::coldest_first;
      } else {
        std::cerr << "unknown allocation policy: " << v << "\n";
        return std::nullopt;
      }
    } else if (arg == "--victim") {
      const std::string v = value();
      if (v == "greedy") {
        opt.victim = tl::VictimPolicy::greedy_cyclic;
      } else if (v == "cost-benefit") {
        opt.victim = tl::VictimPolicy::cost_benefit_age;
      } else {
        std::cerr << "unknown victim policy: " << v << "\n";
        return std::nullopt;
      }
    } else if (arg == "--separation") {
      opt.separation = true;
    } else if (arg == "--program-fail-p") {
      opt.program_fail_p = std::stod(value());
    } else if (arg == "--erase-fail-p") {
      opt.erase_fail_p = std::stod(value());
    } else if (arg == "--swl") {
      opt.use_swl = true;
    } else if (arg == "--oracle") {
      opt.use_oracle = true;
    } else if (arg == "--T") {
      opt.threshold = std::stod(value());
    } else if (arg == "--k") {
      opt.k = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (arg == "--raw-threshold") {
      opt.scale_threshold = false;
    } else if (arg == "--trace") {
      opt.trace_path = value();
    } else if (arg == "--workload") {
      const std::string v = value();
      if (v == "desktop") {
        opt.preset = trace::WorkloadPreset::desktop;
      } else if (v == "server") {
        opt.preset = trace::WorkloadPreset::server;
      } else if (v == "sequential_fill") {
        opt.preset = trace::WorkloadPreset::sequential_fill;
      } else if (v == "uniform_random") {
        opt.preset = trace::WorkloadPreset::uniform_random;
      } else {
        std::cerr << "unknown workload preset: " << v << "\n";
        return std::nullopt;
      }
    } else if (arg == "--trace-days") {
      opt.scale.base_trace_days = std::stod(value());
    } else if (arg == "--seed") {
      opt.scale.seed = std::stoull(value());
    } else if (arg == "--years") {
      opt.years = std::stod(value());
    } else if (arg == "--until-failure") {
      opt.until_failure = true;
    } else if (arg == "--crash-sweep") {
      opt.crash_sweep = true;
    } else if (arg == "--crash-writes") {
      opt.crash_writes = std::stoull(value());
    } else if (arg == "--jobs") {
      opt.jobs = static_cast<unsigned>(std::stoul(value()));
    } else if (arg == "--histogram") {
      opt.histogram = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else {
      std::cerr << "unknown flag: " << arg << " (try --help)\n";
      return std::nullopt;
    }
  }
  if (opt.use_swl && opt.use_oracle) {
    std::cerr << "--swl and --oracle are mutually exclusive\n";
    return std::nullopt;
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed.has_value()) return 2;
  const CliOptions& opt = *parsed;

  if (opt.crash_sweep) {
    fault::CrashWorkloadConfig cfg;
    cfg.layer = opt.layer;
    cfg.leveler.k = opt.k;
    cfg.host_writes = opt.crash_writes;
    cfg.workload_seed = opt.scale.seed;
    runner::SweepRunner sweep_runner(opt.jobs);
    const fault::CrashSweepResult r = fault::run_crash_sweep(cfg, sweep_runner);
    if (opt.csv) {
      std::cout << "layer,crash_points,crashes,jobs,fingerprint\n"
                << sim::to_string(opt.layer) << ',' << r.crash_points << ',' << r.crashes << ','
                << sweep_runner.jobs() << ',' << std::hex << r.fingerprint << std::dec << "\n";
    } else {
      std::cout << "crash sweep: layer " << sim::to_string(opt.layer) << ", "
                << r.crash_points << " crash points (" << r.crashes << " power cuts), "
                << sweep_runner.jobs() << " jobs\n"
                << "every point recovered with invariants intact; state fingerprint 0x"
                << std::hex << r.fingerprint << std::dec << "\n";
    }
    return 0;
  }

  sim::SimConfig config = sim::make_sim_config(opt.scale, opt.layer, std::nullopt);
  config.ftl.alloc_policy = opt.alloc;
  config.nftl.alloc_policy = opt.alloc;
  config.ftl.victim_policy = opt.victim;
  config.nftl.victim_policy = opt.victim;
  config.ftl.hot_cold_separation = opt.separation;
  config.failures.program_fail_p = opt.program_fail_p;
  config.failures.erase_fail_p = opt.erase_fail_p;

  double effective_t = opt.threshold;
  if (opt.use_swl) {
    wear::LevelerConfig lc;
    lc.k = opt.k;
    effective_t =
        opt.scale_threshold ? sim::scaled_threshold(opt.threshold, opt.scale) : opt.threshold;
    lc.threshold = effective_t;
    config.leveler = lc;
  } else if (opt.use_oracle) {
    config.oracle_leveler.emplace();
    config.oracle_leveler->gap_threshold = std::max<std::uint32_t>(2, opt.scale.endurance / 50);
  }

  auto simulator = sim::make_simulator(config);

  trace::Trace base;
  if (!opt.trace_path.empty()) {
    if (trace::load_binary(opt.trace_path, &base) != Status::ok) {
      std::cerr << "cannot load trace: " << opt.trace_path << "\n";
      return 1;
    }
  } else {
    trace::SyntheticConfig tc = trace::preset_config(opt.preset, simulator->lba_count());
    tc.duration_s = opt.scale.base_trace_days * 24 * 3600;
    tc.seed = opt.scale.seed;
    base = trace::generate_synthetic_trace(tc);
  }
  trace::SegmentReplaySource source(base, opt.scale.segment_minutes * 60.0, opt.scale.seed ^ 1);

  const double horizon = opt.until_failure ? opt.scale.max_years : opt.years;
  while (true) {
    const std::uint64_t n = simulator->run(source, horizon, opt.until_failure, 1 << 16);
    if (opt.until_failure && simulator->chip().first_failure().has_value()) break;
    if (simulator->clock().years() >= horizon) break;
    if (n == 0) break;
  }
  const sim::SimResult r = simulator->result();

  if (opt.csv) {
    std::cout << "layer,swl,oracle,k,T_eff,alloc,years,first_failure_years,erases,swl_erases,"
                 "live_copies,swl_copies,erase_mean,erase_dev,erase_max,host_writes,"
                 "map_reads,map_writes,map_write_amp\n"
              << sim::to_string(opt.layer) << ',' << opt.use_swl << ',' << opt.use_oracle << ','
              << opt.k << ',' << effective_t << ',' << to_string(opt.alloc) << ','
              << sim::fmt(r.elapsed_years, 6) << ','
              << (r.first_failure_years ? sim::fmt(*r.first_failure_years, 6) : "") << ','
              << r.counters.total_erases() << ',' << r.counters.swl_erases << ','
              << r.counters.total_live_copies() << ',' << r.counters.swl_live_copies << ','
              << sim::fmt(r.erase_summary.mean, 2) << ',' << sim::fmt(r.erase_summary.stddev, 2)
              << ',' << r.erase_summary.max << ',' << r.counters.host_writes << ','
              << r.counters.map_reads << ',' << r.counters.map_writes << ','
              << sim::fmt(r.counters.map_write_amplification(), 4) << "\n";
    return 0;
  }

  std::cout << "device: " << describe(simulator->chip().geometry()) << ", endurance "
            << opt.scale.endurance << ", layer " << sim::to_string(opt.layer) << ", allocation "
            << to_string(opt.alloc) << "\n";
  if (opt.use_swl) {
    std::cout << "SW Leveler: k=" << opt.k << ", T=" << opt.threshold
              << " (effective " << sim::fmt(effective_t, 1) << ")\n";
  } else if (opt.use_oracle) {
    std::cout << "oracle leveler attached\n";
  }
  std::cout << "simulated " << sim::fmt(r.elapsed_years, 4) << " years, "
            << r.counters.host_writes << " host writes, " << r.counters.host_reads
            << " host reads\n";
  if (r.first_failure_years.has_value()) {
    std::cout << "first block wore out after " << sim::fmt(*r.first_failure_years, 4)
              << " years\n";
  } else {
    std::cout << "no block reached the endurance limit\n";
  }
  std::cout << "erases: " << r.counters.total_erases() << " (" << r.counters.swl_erases
            << " by the leveler); live copies: " << r.counters.total_live_copies() << " ("
            << r.counters.swl_live_copies << " by the leveler)\n";
  std::cout << "erase counts: mean " << sim::fmt(r.erase_summary.mean, 1) << ", stddev "
            << sim::fmt(r.erase_summary.stddev, 1) << ", max " << r.erase_summary.max << "\n";
  if (r.counters.map_writes > 0 || r.counters.map_reads > 0) {
    std::cout << "flash-resident map: " << r.counters.map_reads << " translation-page reads, "
              << r.counters.map_writes << " programs (write amplification "
              << sim::fmt(r.counters.map_write_amplification(), 4) << ")\n";
  }
  if (opt.use_swl) {
    std::cout << "leveler: " << r.leveler_stats.activations << " activations, "
              << r.leveler_stats.collections_requested << " collections, "
              << r.leveler_stats.bet_resets << " resetting intervals\n";
  }
  if (opt.histogram) {
    const std::uint32_t width = std::max<std::uint32_t>(1, r.erase_summary.max / 20);
    stats::Histogram h(width, 21);
    h.add_all(r.erase_counts);
    std::cout << "\nerase-count histogram:\n" << h.render();
  }
  return 0;
}
