// flash_lint v2 — pass 2: cross-file rules over the symbol index.
//
// Each rule here checks a *module* invariant of the DAC 2007 design that no
// single translation unit can see: which classes confine themselves to one
// thread, which destructors unhook which observers, whose Status results are
// allowed to die silently, and which cleaner methods own the right to erase.
// The index (index.hpp) is built once per lint run and shared by all four.
#include <algorithm>
#include <array>
#include <string>
#include <string_view>

#include "flash_lint/index.hpp"
#include "flash_lint/lint.hpp"

namespace swl::lint {

namespace {

/// Emits unless a `flash-lint: allow(<rule>)` (or allow(*)) sits on the line.
void emit(const SymbolIndex& index, const RuleInfo& rule, const std::string& file,
          std::size_t line, std::string message, std::vector<Finding>& findings) {
  const auto it = index.allow_lines.find(file);
  if (it != index.allow_lines.end()) {
    for (const auto& [allow_line, allow_rule] : it->second) {
      if (allow_line == line && (allow_rule == rule.id || allow_rule == "*")) return;
    }
  }
  findings.push_back({std::string(rule.id), file, line, std::move(message),
                      std::string(rule.hint)});
}

/// Method names reachable from `seeds` through unqualified / `this->` calls
/// within the same class (fixpoint over name-level edges).
[[nodiscard]] std::set<std::string> intra_class_closure(const ClassInfo& cls,
                                                        std::set<std::string> seeds) {
  bool grew = true;
  while (grew) {
    grew = false;
    for (const MethodInfo& m : cls.methods) {
      if (!m.has_body || seeds.contains(m.name)) continue;
      for (const CallSite& call : m.calls) {
        if (call.intra_class_candidate && seeds.contains(call.name) &&
            cls.find_method(call.name) != nullptr) {
          seeds.insert(m.name);
          grew = true;
          break;
        }
      }
    }
  }
  return seeds;
}

// -- thread-confinement ------------------------------------------------------

/// Hand-off sites where re-binding a ThreadChecker to another thread is the
/// designed protocol: the sweep runner's per-channel dispatch, the array's
/// cross-chip moves, and the host scheduler's shard hand-off. A forwarding
/// method itself named detach_owner_thread is exempt anywhere (that is the
/// hand-off API, not a hand-off decision).
constexpr std::array<std::string_view, 3> kDetachSites = {"src/runner/", "src/array/",
                                                          "src/host/"};

void check_thread_confinement(const SymbolIndex& index, const Options& options,
                              std::vector<Finding>& findings) {
  const RuleInfo& rule = rule_by_id("thread-confinement");
  for (const auto& [name, cls] : index.classes) {
    if (!cls.owns_thread_checker() || path_allowed(cls.file, rule, options)) continue;
    std::set<std::string> asserting;
    for (const MethodInfo& m : cls.methods) {
      if (m.has_body && m.asserts_checker) asserting.insert(m.name);
    }
    const std::set<std::string> covered = intra_class_closure(cls, std::move(asserting));
    for (const MethodInfo& m : cls.methods) {
      if (!m.has_body || !m.is_public || m.is_static || m.is_const) continue;
      if (path_allowed(m.file, rule, options)) continue;  // e.g. defined in tests/
      if (m.name == cls.name || m.name.starts_with("~") || m.name.starts_with("operator")) {
        continue;  // ctors run before confinement binds; dtor teardown is the
                   // owner's job; operators mirror whatever they wrap
      }
      if (m.name == "detach_owner_thread") continue;
      const bool mutates = std::any_of(m.mutated_roots.begin(), m.mutated_roots.end(),
                                       [&cls](const std::string& root) {
                                         return cls.fields.contains(root);
                                       });
      if (mutates && !covered.contains(m.name)) {
        emit(index, rule, m.file, m.line,
             "public mutating method '" + name + "::" + m.name + "' never asserts the class's "
                 "ThreadChecker ('" + cls.checker_field + "')",
             findings);
      }
    }
  }
  // detach hand-off sites: a member call to detach_owner_thread outside the
  // allowlisted modules silently widens who may re-home an object.
  const auto check_detach = [&](const MethodInfo& m) {
    if (!m.has_body || m.name == "detach_owner_thread") return;
    if (path_allowed(m.file, rule, options)) return;
    if (std::any_of(kDetachSites.begin(), kDetachSites.end(),
                    [&m](std::string_view p) { return m.file.starts_with(p); })) {
      return;
    }
    for (const CallSite& call : m.calls) {
      if (call.name == "detach_owner_thread" && call.member_access) {
        emit(index, rule, m.file, call.line,
             "detach_owner_thread called outside the allowlisted hand-off sites "
             "(src/runner, src/array, src/host)",
             findings);
      }
    }
  };
  for (const auto& [name, cls] : index.classes) {
    for (const MethodInfo& m : cls.methods) check_detach(m);
  }
  for (const MethodInfo& m : index.free_functions) check_detach(m);
}

// -- observer-lifetime -------------------------------------------------------

void check_observer_lifetime(const SymbolIndex& index, const Options& options,
                             std::vector<Finding>& findings) {
  const RuleInfo& rule = rule_by_id("observer-lifetime");
  for (const auto& [name, cls] : index.classes) {
    if (path_allowed(cls.file, rule, options)) continue;
    // Every add_<kind>_observer registered anywhere in the class...
    struct Add {
      const MethodInfo* method;
      const CallSite* call;
    };
    std::vector<Add> adds;
    for (const MethodInfo& m : cls.methods) {
      if (!m.has_body || path_allowed(m.file, rule, options)) continue;
      for (const CallSite& call : m.calls) {
        if (call.name.starts_with("add_") && call.name.ends_with("_observer")) {
          adds.push_back({&m, &call});
        }
      }
    }
    if (adds.empty()) continue;
    // ...must have remove_<kind>_observer reachable from the destructor.
    // intra_class_closure walks caller-ward; reachability *from* the dtor is
    // the callee direction, so walk forward over same-class call edges.
    const MethodInfo* dtor = cls.find_method("~" + name);
    std::set<std::string> dtor_reach;
    if (dtor != nullptr && dtor->has_body) {
      dtor_reach = {dtor->name};
      bool grew = true;
      while (grew) {
        grew = false;
        for (const MethodInfo& m : cls.methods) {
          if (!m.has_body || !dtor_reach.contains(m.name)) continue;
          for (const CallSite& call : m.calls) {
            if (call.intra_class_candidate && cls.find_method(call.name) != nullptr &&
                dtor_reach.insert(call.name).second) {
              grew = true;
            }
          }
        }
      }
    }
    for (const Add& add : adds) {
      const std::string kind = add.call->name.substr(4);  // "<kind>_observer"
      const std::string remove_name = "remove_" + kind;
      bool removed = false;
      for (const std::string& reached : dtor_reach) {
        for (const MethodInfo& m : cls.methods) {
          if (!m.has_body || m.name != reached) continue;
          for (const CallSite& call : m.calls) {
            if (call.name == remove_name) removed = true;
          }
        }
      }
      if (!removed) {
        emit(index, rule, add.method->file, add.call->line,
             dtor == nullptr || !dtor->has_body
                 ? "'" + add.call->name + "' registered by " + name + "::" + add.method->name +
                       " but " + name + " has no destructor calling " + remove_name
                 : "'" + add.call->name + "' registered by " + name + "::" + add.method->name +
                       " but " + remove_name + " is not reachable from ~" + name,
             findings);
      }
    }
  }
}

// -- status-provenance -------------------------------------------------------

void check_status_provenance(const SymbolIndex& index, const Options& options,
                             std::vector<Finding>& findings) {
  const RuleInfo& rule = rule_by_id("status-provenance");
  for (const DiscardSite& d : index.discards) {
    if (path_allowed(d.file, rule, options)) continue;
    const auto comments = index.comment_lines.find(d.file);
    const bool justified =
        comments != index.comment_lines.end() &&
        (comments->second.contains(d.line) || (d.line > 1 && comments->second.contains(d.line - 1)));
    if (!justified) {
      emit(index, rule, d.file, d.line,
           "discard_status without a justification comment on or above the line", findings);
    }
    if (!d.callee.empty() && index.status_branch_tested.contains(d.callee)) {
      emit(index, rule, d.file, d.line,
           "discard_status wraps '" + d.callee + "', whose Status feeds control flow "
               "elsewhere in src/ — dropping it here hides a meaningful outcome",
           findings);
    }
  }
}

// -- erase-provenance --------------------------------------------------------

/// The per-module cleaner allowlist: within the GC-owning modules (which the
/// per-file erase-outside-cleaner rule exempts wholesale), only these
/// (class, method) pairs may issue NandChip::erase_block. Everything else in
/// those modules must route through them.
struct CleanerSite {
  std::string_view cls;
  std::string_view method;
};
constexpr std::array<CleanerSite, 9> kCleanerSites = {{
    // src/ftl — the paper's block-mapped FTL Cleaner.
    {"Ftl", "clean_block"},
    {"Ftl", "do_collect_blocks"},
    // src/nftl — fold/rebuild paths own erases during log-block reclaim.
    {"Nftl", "rebuild_from_flash"},
    {"Nftl", "release_block"},
    {"Nftl", "do_collect_blocks"},
    // src/dftl — two-class GC (data / translation blocks).
    {"Dftl", "clean_data_block"},
    {"Dftl", "clean_translation_block"},
    {"Dftl", "do_collect_blocks"},
    // src/nand — the implementation itself.
    {"NandChip", "erase_block"},
}};

void check_erase_provenance(const SymbolIndex& index, const Options& options,
                            std::vector<Finding>& findings) {
  const RuleInfo& rule = rule_by_id("erase-provenance");
  const auto check_method = [&](const MethodInfo& m) {
    if (!m.has_body || path_allowed(m.file, rule, options)) return;
    const bool allowed = std::any_of(kCleanerSites.begin(), kCleanerSites.end(),
                                     [&m](const CleanerSite& site) {
                                       return site.cls == m.class_name && site.method == m.name;
                                     });
    if (allowed) return;
    for (const CallSite& call : m.calls) {
      if (call.name != "erase_block") continue;
      const std::string where = m.class_name.empty() ? m.name : m.class_name + "::" + m.name;
      emit(index, rule, m.file, call.line,
           "erase_block called from '" + where + "', which is not an allowlisted cleaner "
               "method — this erase bypasses the module's GC accounting",
           findings);
    }
  };
  for (const auto& [name, cls] : index.classes) {
    for (const MethodInfo& m : cls.methods) check_method(m);
  }
  for (const MethodInfo& m : index.free_functions) check_method(m);
}

}  // namespace

std::vector<Finding> run_cross_rules(const SymbolIndex& index, const Options& options) {
  std::vector<Finding> findings;
  check_thread_confinement(index, options, findings);
  check_observer_lifetime(index, options, findings);
  check_status_provenance(index, options, findings);
  check_erase_provenance(index, options, findings);
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return findings;
}

}  // namespace swl::lint
