// flash_lint — domain-specific static checks for the SWL tree.
//
// Enforces flash-semantics invariants that generic tooling (clang-tidy,
// -Wthread-safety) cannot express, because they are *module* rules of the
// DAC 2007 design rather than language rules:
//
//   erase-outside-cleaner   NandChip::erase_block may be called only from the
//                           Cleaner/GC modules (src/ftl, src/nftl) and the
//                           chip implementation itself. Every erase must be
//                           BET-visible: SWL-BETUpdate (Algorithm 2) hooks
//                           block erasure via the chip's erase observers, and
//                           an erase issued from a random module is exactly
//                           the kind of silent invariant erosion the wear-
//                           leveling literature warns about.
//   swl-state-outside-swl   The leveler's interval state — ecnt, fcnt,
//                           findex (and their member-variable spellings) —
//                           may be mutated only inside src/swl. Everyone
//                           else reads through the const accessors.
//   raw-rand                No rand()/srand()/std::random_device/std::mt19937
//                           etc. outside core::Rng. Sweep determinism and the
//                           fuzzer's replayability both rest on every random
//                           draw flowing through the seeded core::Rng stream.
//   raw-file-io             No fopen/fwrite-family host I/O outside the
//                           durable FileSnapshotStore implementation:
//                           persistence must route through its
//                           write-fsync-rename path or it is not
//                           crash-consistent.
//
// v2 adds a second, whole-repo pass over a symbol index (index.hpp) with
// cross-file rules that no single translation unit can check:
//
//   thread-confinement      A class owning a core::ThreadChecker must assert
//                           it (directly or via a same-class callee) in every
//                           public mutating method, and detach_owner_thread
//                           may only be called at the allowlisted hand-off
//                           sites (runner/array/host).
//   observer-lifetime       Every add_*_observer registration must have a
//                           matching token-based remove_*_observer reachable
//                           from the registering class's destructor (the
//                           PR 2 dangling-observer bug class).
//   status-provenance       discard_status() requires a justification comment
//                           on or above its line, and may not wrap a callee
//                           whose Status is compared against Status::...
//                           anywhere in src/ (its result feeds control flow —
//                           the PR 7 dropped-result bug class).
//   erase-provenance        Inside the Cleaner/GC modules themselves,
//                           NandChip::erase_block may only be called from the
//                           per-module allowlisted cleaner methods (GC,
//                           fold/rebuild) — function-granular tightening of
//                           erase-outside-cleaner.
//
// The checker is a token-level AST-lite pass: each translation unit is
// tokenized with comments, string/char literals and preprocessor directives
// stripped (libclang is deliberately not a dependency — the container's
// toolchain is gcc-only), then per-rule token patterns run over the stream.
// Cross rules share one symbol index built over all inputs in the same lint
// run (built once, cached across rules). File-scope policy comes from
// per-rule path allowlists; line-scope exceptions use a
// `flash-lint: allow(<rule>)` comment on the offending line.
//
// The library (this header + lint.cpp) is separate from the CLI (main.cpp)
// so tests can drive rules on in-memory fixtures; tools/run_lint.sh is the
// entry point humans and CI share.
#ifndef SWL_TOOLS_FLASH_LINT_LINT_HPP
#define SWL_TOOLS_FLASH_LINT_LINT_HPP

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace swl::lint {

/// One rule of the table above.
struct RuleInfo {
  std::string_view id;       ///< stable machine name, e.g. "raw-rand"
  std::string_view summary;  ///< one-line description for --list-rules
  std::string_view hint;     ///< how to fix a violation (--fix-hints)
  /// Repo-relative path prefixes where the rule does not apply (the modules
  /// that legitimately own the behavior). Forward slashes, case-sensitive.
  std::vector<std::string_view> default_allow;
  /// True for pass-2 rules that run over the whole-repo symbol index rather
  /// than a single file's token stream.
  bool cross = false;
};

/// The built-in rule table (stable order; index is not part of the API).
[[nodiscard]] const std::vector<RuleInfo>& rule_table();

/// Looks a rule up by id; throws std::runtime_error for unknown ids.
[[nodiscard]] const RuleInfo& rule_by_id(std::string_view id);

/// One violation.
struct Finding {
  std::string rule;
  std::string file;  ///< repo-relative path (as passed to lint_source)
  std::size_t line = 0;
  std::string message;
  std::string hint;

  friend bool operator==(const Finding&, const Finding&) = default;
};

struct Options {
  /// Extra allowlist entries, "rule:path-prefix" (checked in addition to the
  /// rule's default_allow). "*:prefix" applies to every rule.
  std::vector<std::string> extra_allow;
};

/// Whether `rel_path` is exempt from `rule` (default_allow or extra_allow).
[[nodiscard]] bool path_allowed(std::string_view rel_path, const RuleInfo& rule,
                                const Options& options);

/// One lexed token: an identifier, number, or punctuation run (maximal-munch
/// over the multi-character operators the rules care about).
struct Token {
  std::string_view text;  ///< view into the source buffer passed to tokenize
  std::size_t line = 1;
};

/// Tokenizes C++ source: //- and /**/-comments, string literals (including
/// raw strings), character literals and preprocessor directives are dropped;
/// identifiers and operators come back with 1-based line numbers.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

/// Lines carrying a `flash-lint: allow(<rule>)` comment, per rule id.
/// (Extracted before comment stripping.)
[[nodiscard]] std::vector<std::pair<std::size_t, std::string>> suppressions(
    std::string_view source);

/// Runs every *per-file* rule over one file's contents. `rel_path` is the
/// repo-relative path (forward slashes) used for allowlists and reporting.
/// Cross-file rules need the whole input set — use lint_sources/lint_files.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view rel_path, std::string_view source,
                                               const Options& options = {});

/// One source file handed to lint_sources / the symbol indexer.
struct FileInput {
  std::string rel_path;  ///< repo-relative, forward slashes
  std::string source;
};

struct Report {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
};

/// Runs both passes — per-file rules on each input, then the cross-file
/// rules over a symbol index built from the whole set. The in-memory
/// counterpart of lint_files (tests drive fixtures through this).
[[nodiscard]] Report lint_sources(const std::vector<FileInput>& files,
                                  const Options& options = {});

/// Reads files into FileInputs. Paths outside `root` keep their given
/// spelling; paths under `root` become root-relative. Unreadable files throw
/// std::runtime_error.
[[nodiscard]] std::vector<FileInput> read_inputs(const std::vector<std::filesystem::path>& files,
                                                 const std::filesystem::path& root);

/// Lints files on disk: read_inputs + lint_sources.
[[nodiscard]] Report lint_files(const std::vector<std::filesystem::path>& files,
                                const std::filesystem::path& root, const Options& options = {});

/// All *.hpp / *.cpp files under the given directories (sorted, recursive).
[[nodiscard]] std::vector<std::filesystem::path> collect_sources(
    const std::vector<std::filesystem::path>& dirs);

/// The "file" entries of a compile_commands.json (absolute paths, deduped,
/// sorted; entries whose file no longer exists are dropped). Throws
/// std::runtime_error on unreadable/malformed input.
[[nodiscard]] std::vector<std::filesystem::path> files_from_compile_commands(
    const std::filesystem::path& compile_commands);

/// Machine-readable report: {"version":1,"files_scanned":N,
/// "findings":[{"rule","file","line","message","hint"},...]}.
[[nodiscard]] std::string report_to_json(const Report& report);

}  // namespace swl::lint

#endif  // SWL_TOOLS_FLASH_LINT_LINT_HPP
