// flash_lint — domain-specific static checks for the SWL tree.
//
// Enforces flash-semantics invariants that generic tooling (clang-tidy,
// -Wthread-safety) cannot express, because they are *module* rules of the
// DAC 2007 design rather than language rules:
//
//   erase-outside-cleaner   NandChip::erase_block may be called only from the
//                           Cleaner/GC modules (src/ftl, src/nftl) and the
//                           chip implementation itself. Every erase must be
//                           BET-visible: SWL-BETUpdate (Algorithm 2) hooks
//                           block erasure via the chip's erase observers, and
//                           an erase issued from a random module is exactly
//                           the kind of silent invariant erosion the wear-
//                           leveling literature warns about.
//   swl-state-outside-swl   The leveler's interval state — ecnt, fcnt,
//                           findex (and their member-variable spellings) —
//                           may be mutated only inside src/swl. Everyone
//                           else reads through the const accessors.
//   raw-rand                No rand()/srand()/std::random_device/std::mt19937
//                           etc. outside core::Rng. Sweep determinism and the
//                           fuzzer's replayability both rest on every random
//                           draw flowing through the seeded core::Rng stream.
//   raw-file-io             No fopen/fwrite-family host I/O outside the
//                           durable FileSnapshotStore implementation:
//                           persistence must route through its
//                           write-fsync-rename path or it is not
//                           crash-consistent.
//
// The checker is a token-level AST-lite pass: each translation unit is
// tokenized with comments, string/char literals and preprocessor directives
// stripped (libclang is deliberately not a dependency — the container's
// toolchain is gcc-only), then per-rule token patterns run over the stream.
// File-scope policy comes from per-rule path allowlists; line-scope
// exceptions use a `flash-lint: allow(<rule>)` comment on the offending line.
//
// The library (this header + lint.cpp) is separate from the CLI (main.cpp)
// so tests can drive rules on in-memory fixtures; tools/run_lint.sh is the
// entry point humans and CI share.
#ifndef SWL_TOOLS_FLASH_LINT_LINT_HPP
#define SWL_TOOLS_FLASH_LINT_LINT_HPP

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace swl::lint {

/// One rule of the table above.
struct RuleInfo {
  std::string_view id;       ///< stable machine name, e.g. "raw-rand"
  std::string_view summary;  ///< one-line description for --list-rules
  std::string_view hint;     ///< how to fix a violation (--fix-hints)
  /// Repo-relative path prefixes where the rule does not apply (the modules
  /// that legitimately own the behavior). Forward slashes, case-sensitive.
  std::vector<std::string_view> default_allow;
};

/// The built-in rule table (stable order; index is not part of the API).
[[nodiscard]] const std::vector<RuleInfo>& rule_table();

/// One violation.
struct Finding {
  std::string rule;
  std::string file;  ///< repo-relative path (as passed to lint_source)
  std::size_t line = 0;
  std::string message;
  std::string hint;

  friend bool operator==(const Finding&, const Finding&) = default;
};

struct Options {
  /// Extra allowlist entries, "rule:path-prefix" (checked in addition to the
  /// rule's default_allow). "*:prefix" applies to every rule.
  std::vector<std::string> extra_allow;
};

/// One lexed token: an identifier, number, or punctuation run (maximal-munch
/// over the multi-character operators the rules care about).
struct Token {
  std::string_view text;  ///< view into the source buffer passed to tokenize
  std::size_t line = 1;
};

/// Tokenizes C++ source: //- and /**/-comments, string literals (including
/// raw strings), character literals and preprocessor directives are dropped;
/// identifiers and operators come back with 1-based line numbers.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

/// Lines carrying a `flash-lint: allow(<rule>)` comment, per rule id.
/// (Extracted before comment stripping.)
[[nodiscard]] std::vector<std::pair<std::size_t, std::string>> suppressions(
    std::string_view source);

/// Runs every rule over one file's contents. `rel_path` is the repo-relative
/// path (forward slashes) used for allowlists and reporting.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view rel_path, std::string_view source,
                                               const Options& options = {});

struct Report {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
};

/// Lints files on disk. Paths outside `root` are reported as given; paths
/// under `root` are reported root-relative. Unreadable files throw
/// std::runtime_error.
[[nodiscard]] Report lint_files(const std::vector<std::filesystem::path>& files,
                                const std::filesystem::path& root, const Options& options = {});

/// All *.hpp / *.cpp files under the given directories (sorted, recursive).
[[nodiscard]] std::vector<std::filesystem::path> collect_sources(
    const std::vector<std::filesystem::path>& dirs);

/// The "file" entries of a compile_commands.json (absolute paths, deduped,
/// sorted; entries whose file no longer exists are dropped). Throws
/// std::runtime_error on unreadable/malformed input.
[[nodiscard]] std::vector<std::filesystem::path> files_from_compile_commands(
    const std::filesystem::path& compile_commands);

/// Machine-readable report: {"version":1,"files_scanned":N,
/// "findings":[{"rule","file","line","message","hint"},...]}.
[[nodiscard]] std::string report_to_json(const Report& report);

}  // namespace swl::lint

#endif  // SWL_TOOLS_FLASH_LINT_LINT_HPP
