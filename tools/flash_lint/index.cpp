#include "flash_lint/index.hpp"

#include <algorithm>
#include <array>
#include <cctype>

#include "flash_lint/lint.hpp"
#include "runner/json.hpp"

namespace swl::lint {

namespace {

// -- small token helpers -----------------------------------------------------

[[nodiscard]] bool is_ident(std::string_view text) {
  if (text.empty()) return false;
  const char c = text.front();
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Keywords that look like calls when followed by '(' but are not.
[[nodiscard]] bool is_call_keyword(std::string_view text) {
  static constexpr std::array<std::string_view, 22> kKeywords = {
      "if",       "for",         "while",    "switch",           "return",
      "sizeof",   "alignof",     "decltype", "catch",            "throw",
      "new",      "delete",      "co_await", "static_cast",      "dynamic_cast",
      "const_cast", "reinterpret_cast", "noexcept", "assert",    "typeid",
      "alignas",  "requires",
  };
  return std::find(kKeywords.begin(), kKeywords.end(), text) != kKeywords.end();
}

/// Tokens that make the *preceding* identifier (chain) a mutation — mirrors
/// the per-file swl-state rule so the two agree on what "a write" is.
[[nodiscard]] bool is_mutating_next(std::string_view text) {
  static constexpr std::array<std::string_view, 13> kOps = {
      "=",  "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", "++", "--",
  };
  return std::find(kOps.begin(), kOps.end(), text) != kOps.end();
}

// -- the per-file parser -----------------------------------------------------
//
// A brace/paren tracking scan over the token stream. It is not a grammar: it
// recognizes the handful of declaration shapes this repository actually uses
// (clang-format layout, one class per `class`/`struct` keyword, members with
// trailing underscores) and deliberately ignores everything else. Unknown
// constructs fall through to "skip balanced braces", so a parse never
// derails the whole file.

struct RawMethod {
  MethodInfo info;
  bool in_class_body = false;  ///< access came from the class body, not a merge
};

struct FileParse {
  std::vector<ClassInfo> classes;
  std::vector<RawMethod> out_of_line;   ///< `Class::method(...) { ... }` defs
  std::vector<MethodInfo> free_funcs;   ///< no class qualifier
};

class Parser {
 public:
  Parser(const std::string& file, const std::vector<Token>& tokens, FileParse& out,
         SymbolIndex& index)
      : file_(file), t_(tokens), out_(out), index_(index) {}

  void run() {
    collect_stream_facts();
    parse_scope(nullptr, /*in_class=*/false, /*public_default=*/true, /*top=*/true);
  }

 private:
  [[nodiscard]] std::string_view text(std::size_t k) const {
    return k < t_.size() ? t_[k].text : std::string_view{};
  }
  [[nodiscard]] std::size_t line(std::size_t k) const {
    return k < t_.size() ? t_[k].line : 0;
  }

  /// Skips a balanced token run starting at an opener already consumed
  /// conceptually: `i` points AT the opener; returns index one past the
  /// matching closer (or t_.size()).
  [[nodiscard]] std::size_t skip_balanced(std::size_t i, std::string_view open,
                                          std::string_view close) const {
    std::size_t depth = 0;
    for (; i < t_.size(); ++i) {
      if (text(i) == open) {
        ++depth;
      } else if (text(i) == close) {
        if (--depth == 0) return i + 1;
      }
    }
    return i;
  }

  /// Skips template argument/parameter angles: `i` at '<'. `>>` counts as two
  /// closes. Bails (returning the bail position) on ';' or '{' at depth > 0 —
  /// a comparison mistaken for an angle.
  [[nodiscard]] std::size_t skip_angles(std::size_t i) const {
    std::size_t depth = 0;
    const std::size_t start = i;
    for (; i < t_.size(); ++i) {
      const std::string_view tok = text(i);
      if (tok == "<") {
        ++depth;
      } else if (tok == ">") {
        if (--depth == 0) return i + 1;
      } else if (tok == ">>") {
        if (depth <= 2) return i + 1;
        depth -= 2;
      } else if (tok == ";" || tok == "{") {
        return start + 1;  // was a comparison after all; reprocess normally
      }
    }
    return i;
  }

  // -- whole-stream facts (no scoping needed) -------------------------------

  void collect_stream_facts() {
    for (std::size_t i = 0; i + 1 < t_.size(); ++i) {
      if (!is_ident(text(i)) || text(i + 1) != "(") continue;
      if (text(i) == "discard_status") {
        // `void discard_status(Status)` is the declaration, not a discard.
        if (i > 0 && text(i - 1) == "void") continue;
        DiscardSite site{file_, line(i), inner_callee(i + 1)};
        index_.discards.push_back(std::move(site));
        continue;
      }
      // `callee(...) == Status` / `!= Status`: the callee's Status feeds
      // control flow somewhere. Collected from src/ only — a comparison in a
      // test must not make every src discard of that callee suspicious.
      if (!file_.starts_with("src/")) continue;
      if (is_call_keyword(text(i))) continue;
      const std::size_t close = skip_balanced(i + 1, "(", ")");
      if (close >= t_.size() || close == i + 1) continue;
      const std::string_view cmp = text(close);
      if ((cmp == "==" || cmp == "!=") && text(close + 1) == "Status") {
        index_.status_branch_tested.insert(std::string(text(i)));
      }
    }
  }

  /// First identifier-followed-by-'(' inside a parenthesized argument:
  /// `discard_status(chip().invalidate_page(addr))` -> "invalidate_page".
  [[nodiscard]] std::string inner_callee(std::size_t open) const {
    std::size_t depth = 0;
    for (std::size_t i = open; i < t_.size(); ++i) {
      if (text(i) == "(") {
        if (depth > 0 && is_ident(text(i - 1)) && !is_call_keyword(text(i - 1))) {
          return std::string(text(i - 1));
        }
        ++depth;
      } else if (text(i) == ")") {
        if (--depth == 0) break;
      }
    }
    return {};
  }

  // -- scoped parse ----------------------------------------------------------

  /// Parses one brace scope (namespace/top-level when `cls` is null, a class
  /// body otherwise). `i_` is positioned after the opening '{' (or at 0 for
  /// the top level); returns after consuming the matching '}'.
  void parse_scope(ClassInfo* cls, bool in_class, bool public_default, bool top = false) {
    bool is_public = public_default;
    while (i_ < t_.size()) {
      const std::string_view tok = text(i_);
      if (tok == "}") {
        if (!top) ++i_;
        return;
      }
      if (tok == "template") {
        ++i_;
        if (text(i_) == "<") i_ = skip_angles(i_);
        continue;
      }
      if (tok == "namespace") {
        ++i_;
        while (is_ident(text(i_)) || text(i_) == "::") ++i_;
        if (text(i_) == "=") {  // namespace alias
          while (i_ < t_.size() && text(i_) != ";") ++i_;
          continue;
        }
        if (text(i_) == "{") {
          ++i_;
          parse_scope(nullptr, false, true);
        }
        continue;
      }
      if (tok == "enum") {
        ++i_;
        while (i_ < t_.size() && text(i_) != "{" && text(i_) != ";") ++i_;
        if (text(i_) == "{") i_ = skip_balanced(i_, "{", "}");
        continue;
      }
      if (tok == "class" || tok == "struct" || tok == "union") {
        parse_class_head(is_public);
        continue;
      }
      if (in_class && (tok == "public" || tok == "private" || tok == "protected") &&
          text(i_ + 1) == ":") {
        is_public = tok == "public";
        i_ += 2;
        continue;
      }
      if (tok == "using" || tok == "typedef" || tok == "friend" || tok == "static_assert" ||
          tok == "extern") {
        while (i_ < t_.size() && text(i_) != ";") {
          if (text(i_) == "{") {
            i_ = skip_balanced(i_, "{", "}");
            continue;
          }
          ++i_;
        }
        ++i_;
        continue;
      }
      parse_declaration_unit(cls, is_public);
    }
  }

  /// `class`/`struct`/`union` at `i_`. Handles forward declarations, bases,
  /// `final`, and nested classes (recursing with a fresh ClassInfo).
  void parse_class_head(bool enclosing_public) {
    const bool is_struct = text(i_) != "class";
    ++i_;
    while (text(i_) == "[") i_ = skip_balanced(i_, "[", "]");  // attributes
    std::string name;
    if (is_ident(text(i_))) {
      name = std::string(text(i_));
      ++i_;
    }
    if (text(i_) == "<") i_ = skip_angles(i_);  // explicit specialization
    // Scan to '{' (definition) or ';' (forward declaration / variable).
    while (i_ < t_.size() && text(i_) != "{" && text(i_) != ";") {
      if (text(i_) == "<") {
        i_ = skip_angles(i_);
        continue;
      }
      if (text(i_) == "(") {  // e.g. `struct X foo(args);` C-style — bail
        i_ = skip_balanced(i_, "(", ")");
        continue;
      }
      ++i_;
    }
    if (text(i_) != "{") {
      ++i_;  // forward declaration
      return;
    }
    ClassInfo info;
    info.name = name;
    info.file = file_;
    info.line = line(i_);
    ++i_;  // consume '{'
    ClassInfo* saved = current_;
    current_ = &info;
    parse_scope(&info, /*in_class=*/true, /*public_default=*/is_struct);
    current_ = saved;
    // Trailing `;` (and any variable declarators) up to the semicolon.
    while (i_ < t_.size() && text(i_) != ";") ++i_;
    ++i_;
    if (!info.name.empty()) out_.classes.push_back(std::move(info));
    (void)enclosing_public;
  }

  /// Everything else: one declaration unit ending in ';' (declaration /
  /// field) or '{' (definition). See the shape notes in index.hpp.
  void parse_declaration_unit(ClassInfo* cls, bool is_public) {
    const std::size_t start = i_;
    std::size_t paren_depth = 0;
    std::size_t first_open = 0;   // first top-level '(' of the unit
    bool has_static = false;
    std::size_t stop = t_.size();  // position of the terminating ';' or '{'
    bool body = false;
    for (std::size_t k = start; k < t_.size(); ++k) {
      const std::string_view tok = text(k);
      if (tok == "(") {
        if (paren_depth == 0 && first_open == 0) first_open = k;
        ++paren_depth;
      } else if (tok == ")") {
        if (paren_depth > 0) --paren_depth;
      } else if (tok == "static" && paren_depth == 0) {
        has_static = true;
      } else if (paren_depth == 0 && (tok == ";" || tok == "{")) {
        stop = k;
        body = tok == "{";
        break;
      } else if (paren_depth == 0 && tok == "}") {
        // Malformed unit (unbalanced scope) — hand back to the caller.
        i_ = k;
        return;
      }
    }
    if (stop >= t_.size()) {
      i_ = t_.size();
      return;
    }

    // A function shape: a top-level '(' preceded by a usable name.
    std::string fn_name;
    std::string fn_class;
    if (first_open > start && is_ident(text(first_open - 1)) &&
        !is_call_keyword(text(first_open - 1))) {
      std::size_t name_at = first_open - 1;
      fn_name = std::string(text(name_at));
      if (name_at > start && text(name_at - 1) == "~") {
        fn_name = "~" + fn_name;
        --name_at;
      }
      if (name_at >= start + 2 && text(name_at - 1) == "::" && is_ident(text(name_at - 2))) {
        fn_class = std::string(text(name_at - 2));
      }
      // `operator` overloads: name the method "operator<op>" so the
      // cross rules can recognize (and exempt) it.
      if (name_at > start && text(name_at - 1) == "operator") {
        fn_name = "operator" + fn_name;
      }
    }

    if (!body) {
      if (!fn_name.empty() && cls != nullptr) {
        // In-class declaration: record name/access/const for later merging
        // with an out-of-line definition.
        MethodInfo m;
        m.class_name = cls->name;
        m.name = fn_name;
        m.file = file_;
        m.line = line(first_open);
        m.is_public = is_public;
        m.is_static = has_static;
        m.is_const = const_after_params(first_open, stop);
        cls->methods.push_back(std::move(m));
      } else if (fn_name.empty() && cls != nullptr) {
        record_fields(cls, start, stop);
      }
      i_ = stop + 1;
      return;
    }

    // '{'-terminated. Without a function name this is a brace-initialized
    // field (`std::uint64_t x{0};`) or an unrecognized construct: record
    // fields, skip the braces.
    if (fn_name.empty()) {
      if (cls != nullptr) record_fields(cls, start, stop);
      i_ = skip_balanced(stop, "{", "}");
      if (text(i_) == ";") ++i_;
      return;
    }

    MethodInfo m;
    m.class_name = !fn_class.empty() ? fn_class : (cls != nullptr ? cls->name : std::string{});
    m.name = fn_name;
    m.file = file_;
    m.line = line(first_open);
    m.is_public = is_public;
    m.is_static = has_static;
    m.is_const = const_after_params(first_open, stop);
    m.has_body = true;
    i_ = stop + 1;  // past '{'
    parse_body(m);

    if (cls != nullptr) {
      cls->methods.push_back(std::move(m));
    } else if (!fn_class.empty()) {
      out_.out_of_line.push_back({std::move(m), false});
    } else {
      out_.free_funcs.push_back(std::move(m));
    }
  }

  /// `const` between the parameter list's ')' and the body/terminator
  /// (stopping at a trailing-return `->`, whose type may itself be const).
  [[nodiscard]] bool const_after_params(std::size_t open, std::size_t stop) const {
    const std::size_t close = skip_balanced(open, "(", ")");
    for (std::size_t k = close; k < stop; ++k) {
      if (text(k) == "->") break;
      if (text(k) == ":") break;  // constructor init list
      if (text(k) == "const") return true;
    }
    return false;
  }

  /// Field extraction from a declaration unit [start, stop): trailing-
  /// underscore identifiers (the repo's member idiom) plus the last
  /// identifier before the terminator/initializer. Also spots ThreadChecker
  /// members.
  void record_fields(ClassInfo* cls, std::size_t start, std::size_t stop) {
    bool saw_checker_type = false;
    std::string last_ident;
    for (std::size_t k = start; k < stop; ++k) {
      const std::string_view tok = text(k);
      if (tok == "ThreadChecker") saw_checker_type = true;
      if (tok == "=") break;  // initializer: declarator name already seen
      if (is_ident(tok)) {
        last_ident = std::string(tok);
        if (tok.size() > 1 && tok.back() == '_') cls->fields.insert(std::string(tok));
      }
    }
    if (!last_ident.empty()) cls->fields.insert(last_ident);
    if (saw_checker_type && cls->checker_field.empty() && !last_ident.empty()) {
      cls->checker_field = last_ident;
    }
  }

  /// Parses a method body: `i_` is just past the '{'. Collects call sites,
  /// mutated roots, and checker assertions; consumes through the matching
  /// '}'. Lambda bodies are attributed to the enclosing method (an observer
  /// registered inside a lambda still belongs to the method registering it).
  void parse_body(MethodInfo& m) {
    std::size_t depth = 1;
    for (; i_ < t_.size(); ++i_) {
      const std::string_view tok = text(i_);
      if (tok == "{") {
        ++depth;
        continue;
      }
      if (tok == "}") {
        if (--depth == 0) {
          ++i_;
          return;
        }
        continue;
      }
      if (!is_ident(tok)) continue;

      // Call site?
      if (text(i_ + 1) == "(" && !is_call_keyword(tok)) {
        const std::string_view prev = i_ > 0 ? text(i_ - 1) : std::string_view{};
        CallSite call;
        call.name = std::string(tok);
        call.line = line(i_);
        call.member_access = prev == "." || prev == "->";
        const bool qualified = prev == "::";
        const bool via_this = call.member_access && i_ >= 2 && text(i_ - 2) == "this";
        call.intra_class_candidate = (!call.member_access && !qualified) || via_this;
        if (call.member_access && (tok == "check" || tok == "detach") && i_ >= 2) {
          const std::string_view receiver = text(i_ - 2);
          if (receiver.ends_with("checker_") || receiver == "checker") {
            m.asserts_checker = true;
          }
        }
        m.calls.push_back(std::move(call));
      }

      // Mutation root? `x = ...`, `x.y += ...`, `++x.y`, `x--`.
      const bool written_after = is_mutating_next(text(i_ + 1));
      std::size_t j = i_;
      while (j >= 2 && (text(j - 1) == "." || text(j - 1) == "->") && is_ident(text(j - 2))) {
        j -= 2;
      }
      const bool written_before =
          j > 0 && (text(j - 1) == "++" || text(j - 1) == "--");
      if (written_after || written_before) {
        std::string root(text(j));
        if (root == "this" && j + 2 <= i_) root = std::string(text(j + 2));
        m.mutated_roots.insert(std::move(root));
      }
    }
  }

  const std::string& file_;
  const std::vector<Token>& t_;
  FileParse& out_;
  SymbolIndex& index_;
  ClassInfo* current_ = nullptr;
  std::size_t i_ = 0;
};

}  // namespace

// -- comment lines -----------------------------------------------------------

std::set<std::size_t> find_comment_lines(std::string_view source) {
  std::set<std::size_t> lines;
  std::size_t line = 1;
  std::size_t i = 0;
  while (i < source.size()) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == 'R' && i + 1 < source.size() && source[i + 1] == '"') {
      // Raw string: its body is not a comment, whatever it contains.
      std::size_t j = i + 2;
      std::string delim;
      while (j < source.size() && source[j] != '(') delim.push_back(source[j++]);
      const std::string close = ")" + delim + "\"";
      const std::size_t end = source.find(close, j);
      const std::size_t stop = end == std::string_view::npos ? source.size() : end + close.size();
      line += static_cast<std::size_t>(
          std::count(source.begin() + static_cast<std::ptrdiff_t>(i),
                     source.begin() + static_cast<std::ptrdiff_t>(stop), '\n'));
      i = stop;
      continue;
    }
    if (c == '\'' && i > 0 && std::isalnum(static_cast<unsigned char>(source[i - 1])) != 0) {
      ++i;  // digit separator (1'000'000), not a char-literal opener
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < source.size()) {
        if (source[i] == '\\' && i + 1 < source.size()) {
          i += 2;
          continue;
        }
        if (source[i] == '\n') ++line;
        if (source[i] == quote) {
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      lines.insert(line);
      // Honor backslash-newline continuations: the comment spans those
      // lines too (mirrors the tokenizer).
      while (i < source.size() && source[i] != '\n') {
        if (source[i] == '\\' && i + 1 < source.size() && source[i + 1] == '\n') {
          ++line;
          lines.insert(line);
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '*') {
      lines.insert(line);
      const std::size_t end = source.find("*/", i + 2);
      const std::size_t stop = end == std::string_view::npos ? source.size() : end + 2;
      for (std::size_t k = i; k < stop; ++k) {
        if (source[k] == '\n') lines.insert(++line);
      }
      i = stop;
      continue;
    }
    ++i;
  }
  return lines;
}

// -- index assembly ----------------------------------------------------------

SymbolIndex build_index(const std::vector<FileInput>& files) {
  SymbolIndex index;
  std::vector<RawMethod> pending;  // out-of-line defs, merged after all files
  for (const FileInput& f : files) {
    const std::vector<Token> tokens = tokenize(f.source);
    FileParse parse;
    Parser(f.rel_path, tokens, parse, index).run();
    for (ClassInfo& cls : parse.classes) {
      auto [it, inserted] = index.classes.emplace(cls.name, std::move(cls));
      if (!inserted) {
        // Same name seen twice (e.g. a test helper shadowing a src class
        // name): keep the src definition, merge fields/methods of the other
        // so nothing silently vanishes.
        ClassInfo& kept = it->second;
        ClassInfo& other = cls;
        if (!kept.file.starts_with("src/") && other.file.starts_with("src/")) {
          std::swap(kept, other);
        }
        for (MethodInfo& m : other.methods) kept.methods.push_back(std::move(m));
        kept.fields.insert(other.fields.begin(), other.fields.end());
        if (kept.checker_field.empty()) kept.checker_field = other.checker_field;
      }
    }
    for (RawMethod& m : parse.out_of_line) pending.push_back(std::move(m));
    for (MethodInfo& m : parse.free_funcs) index.free_functions.push_back(std::move(m));
    index.allow_lines[f.rel_path] = suppressions(f.source);
    index.comment_lines[f.rel_path] = find_comment_lines(f.source);
    ++index.files_indexed;
  }
  // Merge out-of-line definitions into their classes, inheriting the access
  // of the in-class declaration (definitions in a .cpp carry no specifier).
  for (RawMethod& raw : pending) {
    auto it = index.classes.find(raw.info.class_name);
    if (it == index.classes.end()) {
      // Class body was not among the scanned files: keep the definition as
      // a free function so call-site rules (erase-provenance) still see it.
      index.free_functions.push_back(std::move(raw.info));
      continue;
    }
    ClassInfo& cls = it->second;
    for (const MethodInfo& decl : cls.methods) {
      if (decl.name == raw.info.name && !decl.has_body) {
        raw.info.is_public = decl.is_public;
        break;
      }
    }
    cls.methods.push_back(std::move(raw.info));
  }
  return index;
}

std::string index_to_json(const SymbolIndex& index) {
  runner::Json doc = runner::Json::object();
  doc.set("version", 1);
  doc.set("files_indexed", static_cast<std::uint64_t>(index.files_indexed));
  runner::Json classes = runner::Json::array();
  for (const auto& [name, cls] : index.classes) {
    runner::Json c = runner::Json::object();
    c.set("name", name);
    c.set("file", cls.file);
    c.set("thread_checker", cls.checker_field);
    c.set("fields", static_cast<std::uint64_t>(cls.fields.size()));
    runner::Json methods = runner::Json::array();
    for (const MethodInfo& m : cls.methods) {
      if (!m.has_body) continue;
      runner::Json mj = runner::Json::object();
      mj.set("name", m.name);
      mj.set("public", m.is_public);
      mj.set("const", m.is_const);
      mj.set("asserts_checker", m.asserts_checker);
      mj.set("calls", static_cast<std::uint64_t>(m.calls.size()));
      methods.push(std::move(mj));
    }
    c.set("methods", std::move(methods));
    classes.push(std::move(c));
  }
  doc.set("classes", std::move(classes));
  runner::Json discards = runner::Json::array();
  for (const DiscardSite& d : index.discards) {
    runner::Json dj = runner::Json::object();
    dj.set("file", d.file);
    dj.set("line", static_cast<std::uint64_t>(d.line));
    dj.set("callee", d.callee);
    discards.push(std::move(dj));
  }
  doc.set("discards", std::move(discards));
  runner::Json tested = runner::Json::array();
  for (const std::string& name : index.status_branch_tested) tested.push(name);
  doc.set("status_branch_tested", std::move(tested));
  return doc.dump(2);
}

}  // namespace swl::lint
