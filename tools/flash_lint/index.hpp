// flash_lint v2 — pass 1: the symbol index.
//
// A lightweight, token-level model of the whole repository, built once per
// lint run and shared by every cross-file rule (pass 2, cross.cpp). It is
// deliberately not a C++ parser: the repo's consistent style (clang-format,
// trailing-underscore members, one class per scope) lets a brace/paren
// tracking scan recover everything the module rules need —
//
//   - classes: member fields, whether one of them is a core::ThreadChecker,
//     their methods (access, constness, staticness, definition site);
//   - methods: the calls their bodies make (with member-access flavor), the
//     member fields they textually mutate, and whether they assert a
//     ThreadChecker;
//   - repo-wide facts: `discard_status` call sites with the wrapped callee,
//     callees whose Status is compared against `Status::...` somewhere
//     (i.e. feeds control flow), per-file suppression comments and
//     comment-bearing lines.
//
// Everything heuristic about the model is documented at the point of use in
// index.cpp; tests/lint/cross_rules_test.cpp pins the contract.
#ifndef SWL_TOOLS_FLASH_LINT_INDEX_HPP
#define SWL_TOOLS_FLASH_LINT_INDEX_HPP

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "flash_lint/lint.hpp"  // FileInput, Token, Finding, Options

namespace swl::lint {

/// One `name(...)` call inside a method body.
struct CallSite {
  std::string name;
  std::size_t line = 0;
  /// True for `x.name(...)` / `x->name(...)`; false for unqualified calls
  /// (the intra-class reachability edges) and `Class::name(...)`.
  bool member_access = false;
  /// True for unqualified or explicit `this->` calls — candidates for
  /// same-class reachability.
  bool intra_class_candidate = false;
};

/// One method (or free function: `class_name` empty) with a body or an
/// in-class declaration.
struct MethodInfo {
  std::string class_name;  ///< empty for free functions
  std::string name;        ///< "~Foo" for destructors; "Foo" for constructors
  std::string file;        ///< file of the *definition* (or declaration)
  std::size_t line = 0;
  bool is_public = true;
  bool is_const = false;
  bool is_static = false;
  bool has_body = false;
  /// Body contains `<checker>.check(...)` or `<checker>.detach(...)` on an
  /// identifier naming a ThreadChecker-ish member (ends in "checker_" or
  /// equals the owning class's checker field).
  bool asserts_checker = false;
  std::vector<CallSite> calls;
  /// Root identifiers the body mutates (`x = ..`, `++x.y`, ...). Intersect
  /// with ClassInfo::fields to decide whether the method mutates the object.
  std::set<std::string> mutated_roots;
};

struct ClassInfo {
  std::string name;
  std::string file;  ///< file of the definition
  std::size_t line = 0;
  std::set<std::string> fields;
  /// Name of the ThreadChecker member ("" when the class owns none).
  std::string checker_field;
  std::vector<MethodInfo> methods;

  [[nodiscard]] bool owns_thread_checker() const { return !checker_field.empty(); }
  /// Prefers the definition (has_body) over an in-class declaration when a
  /// method was declared in the header and defined out-of-line.
  [[nodiscard]] const MethodInfo* find_method(std::string_view method_name) const {
    const MethodInfo* declared = nullptr;
    for (const MethodInfo& m : methods) {
      if (m.name != method_name) continue;
      if (m.has_body) return &m;
      if (declared == nullptr) declared = &m;
    }
    return declared;
  }
};

/// A `discard_status(<callee>(...))` site.
struct DiscardSite {
  std::string file;
  std::size_t line = 0;
  /// First callee inside the parentheses ("" when the argument is not a
  /// call, e.g. `discard_status(Status::ok)`).
  std::string callee;
};

struct SymbolIndex {
  /// Keyed by class name. Same-named classes in different namespaces are
  /// merged — acceptable for this tree (names are unique) and documented.
  std::map<std::string, ClassInfo> classes;
  /// Free functions (class_name empty), for erase-provenance attribution.
  std::vector<MethodInfo> free_functions;
  std::vector<DiscardSite> discards;
  /// Callee names whose result is compared against `Status::...` somewhere
  /// in the indexed sources — their Status feeds control flow.
  std::set<std::string> status_branch_tested;
  /// Per-file `flash-lint: allow(<rule>)` lines (file -> (line, rule)).
  std::map<std::string, std::vector<std::pair<std::size_t, std::string>>> allow_lines;
  /// Per-file set of lines carrying any comment (for the justification-
  /// comment requirement of status-provenance).
  std::map<std::string, std::set<std::size_t>> comment_lines;
  std::size_t files_indexed = 0;
};

/// Builds the index over the given sources. Order-independent: the result
/// depends only on the set of (path, source) pairs.
[[nodiscard]] SymbolIndex build_index(const std::vector<FileInput>& files);

/// Lines of `source` that carry a comment (// or a /* */ span, including
/// every line a block comment covers). Raw strings do not count.
[[nodiscard]] std::set<std::size_t> find_comment_lines(std::string_view source);

/// Debug/CI visibility: a stable JSON rendering of the index (classes with
/// checker/field/method facts; discard and branch-tested summaries).
[[nodiscard]] std::string index_to_json(const SymbolIndex& index);

/// Pass 2: runs every cross-file rule (thread-confinement, observer-lifetime,
/// status-provenance, erase-provenance) over a built index. Honors per-rule
/// path allowlists (default + Options::extra_allow) and per-line
/// `flash-lint: allow(<rule>)` suppressions recorded in the index.
[[nodiscard]] std::vector<Finding> run_cross_rules(const SymbolIndex& index,
                                                   const Options& options = {});

}  // namespace swl::lint

#endif  // SWL_TOOLS_FLASH_LINT_INDEX_HPP
