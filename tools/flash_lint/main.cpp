// flash_lint CLI — see lint.hpp for the rule table and tools/run_lint.sh for
// the entry point CI and local runs share.
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
#include <cstring>
#include <exception>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "flash_lint/index.hpp"
#include "flash_lint/lint.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: flash_lint [options] [file...]\n"
        "\n"
        "Flash-semantics checks for the SWL tree (see TESTING.md, 'Static analysis').\n"
        "With no files, scans src/ tools/ bench/ examples/ under --root.\n"
        "\n"
        "options:\n"
        "  --root DIR             repo root for default scan + relative paths (default: .)\n"
        "  --compile-commands F   lint the translation units listed in F (plus all\n"
        "                         headers under the default directories)\n"
        "  --allow RULE:PREFIX    extra allowlist entry (RULE or '*', repo-relative\n"
        "                         path prefix); repeatable\n"
        "  --json                 machine-readable report on stdout\n"
        "  --fix-hints            include a fix hint with each text finding\n"
        "  --list-rules           print the rule table and exit\n"
        "  --dump-index           print the pass-1 symbol index as JSON and exit\n"
        "                         (no rules run; CI artifacts / debugging)\n"
        "  -h, --help             this message\n";
}

struct Args {
  std::filesystem::path root = ".";
  std::filesystem::path compile_commands;
  std::vector<std::filesystem::path> files;
  swl::lint::Options options;
  bool json = false;
  bool fix_hints = false;
  bool list_rules = false;
  bool dump_index = false;
};

[[nodiscard]] const char* need_value(int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::cerr << "flash_lint: " << argv[i] << " needs a value\n";
    std::exit(2);
  }
  return argv[++i];
}

[[nodiscard]] Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root") {
      args.root = need_value(argc, argv, i);
    } else if (arg == "--compile-commands") {
      args.compile_commands = need_value(argc, argv, i);
    } else if (arg == "--allow") {
      const std::string entry = need_value(argc, argv, i);
      const std::size_t colon = entry.find(':');
      bool known = colon != std::string::npos;
      if (known && entry.substr(0, colon) != "*") {
        known = false;
        for (const auto& rule : swl::lint::rule_table()) {
          if (rule.id == entry.substr(0, colon)) known = true;
        }
      }
      if (!known) {
        std::cerr << "flash_lint: --allow wants RULE:PREFIX with a known rule (or '*'), got '"
                  << entry << "'\n";
        std::exit(2);
      }
      args.options.extra_allow.push_back(entry);
    } else if (arg == "--json") {
      args.json = true;
    } else if (arg == "--fix-hints") {
      args.fix_hints = true;
    } else if (arg == "--list-rules") {
      args.list_rules = true;
    } else if (arg == "--dump-index") {
      args.dump_index = true;
    } else if (arg == "-h" || arg == "--help") {
      print_usage(std::cout);
      std::exit(0);
    } else if (arg.starts_with("-")) {
      std::cerr << "flash_lint: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      std::exit(2);
    } else {
      args.files.emplace_back(arg);
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.list_rules) {
    for (const auto& rule : swl::lint::rule_table()) {
      std::cout << rule.id << "\n  " << rule.summary << "\n  allowed in:";
      for (const auto& prefix : rule.default_allow) std::cout << ' ' << prefix << "*";
      std::cout << "\n  fix: " << rule.hint << "\n";
    }
    return 0;
  }
  try {
    std::vector<std::filesystem::path> files = args.files;
    if (files.empty()) {
      if (!args.compile_commands.empty()) {
        files = swl::lint::files_from_compile_commands(args.compile_commands);
        // compile_commands lists translation units only; headers carry inline
        // hot paths, so always sweep them in as well.
        for (auto& header : swl::lint::collect_sources(
                 {args.root / "src", args.root / "tools", args.root / "bench",
                  args.root / "examples"})) {
          if (header.extension() == ".hpp") files.push_back(std::move(header));
        }
      } else {
        files = swl::lint::collect_sources({args.root / "src", args.root / "tools",
                                            args.root / "bench", args.root / "examples"});
      }
      if (files.empty()) {
        std::cerr << "flash_lint: nothing to lint under " << args.root << "\n";
        return 2;
      }
    }
    if (args.dump_index) {
      const auto inputs = swl::lint::read_inputs(files, args.root);
      std::cout << swl::lint::index_to_json(swl::lint::build_index(inputs)) << "\n";
      return 0;
    }
    const swl::lint::Report report = swl::lint::lint_files(files, args.root, args.options);
    if (args.json) {
      std::cout << swl::lint::report_to_json(report) << "\n";
    } else {
      for (const auto& f : report.findings) {
        std::cout << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
        if (args.fix_hints) std::cout << "    fix: " << f.hint << "\n";
      }
      std::cout << "flash_lint: " << report.findings.size() << " finding(s) in "
                << report.files_scanned << " file(s)\n";
    }
    return report.findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
