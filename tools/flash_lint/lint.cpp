#include "flash_lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "flash_lint/index.hpp"
#include "runner/json.hpp"

namespace swl::lint {

namespace {

// -- lexer ------------------------------------------------------------------

[[nodiscard]] bool ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Multi-character operators the rules distinguish, longest first (maximal
/// munch): `ecnt == x` must not lex as `ecnt` `=` `= x`. `->` and `::` are
/// load-bearing for member-access/qualification checks; `<<`/`>>` keep shift
/// operators from masquerading as template angles in the symbol indexer.
constexpr std::array<std::string_view, 24> kOperators = {
    "<<=", ">>=", "...", "->*", "->", "::", "<<", ">>", "==", "!=", "<=", ">=",
    "&&",  "||",  "++",  "--",  "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
};

/// Raw-string literal prefixes: `R"(...)"` plus the encoding-prefixed forms.
/// A prefixed raw string mis-lexed as `u8R` + a plain `"` would dump the raw
/// body into the token stream — exactly the false-positive class the fixture
/// tests pin.
[[nodiscard]] bool raw_string_prefix(std::string_view ident) noexcept {
  return ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" || ident == "u8R";
}

/// Skips a raw string literal R"delim(...)delim", returning the index one
/// past its end (and counting newlines into `line`).
std::size_t skip_raw_string(std::string_view s, std::size_t i, std::size_t& line) {
  // i points at the 'R'; i+1 is '"'.
  std::size_t j = i + 2;
  std::string delim;
  while (j < s.size() && s[j] != '(') delim.push_back(s[j++]);
  const std::string close = ")" + delim + "\"";
  const std::size_t end = s.find(close, j);
  const std::size_t stop = end == std::string_view::npos ? s.size() : end + close.size();
  line += static_cast<std::size_t>(std::count(s.begin() + static_cast<std::ptrdiff_t>(i),
                                              s.begin() + static_cast<std::ptrdiff_t>(stop), '\n'));
  return stop;
}

/// Skips a quoted literal ('...' or "...") honoring backslash escapes.
std::size_t skip_quoted(std::string_view s, std::size_t i, std::size_t& line) {
  const char quote = s[i];
  std::size_t j = i + 1;
  while (j < s.size()) {
    if (s[j] == '\\' && j + 1 < s.size()) {
      j += 2;
      continue;
    }
    if (s[j] == '\n') ++line;  // unterminated literal: tolerate, keep counting
    if (s[j] == quote) return j + 1;
    ++j;
  }
  return j;
}

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t i = 0;
  bool line_start = true;  // only whitespace seen on this line so far
  while (i < source.size()) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Preprocessor directive: drop through end of line (honoring \-splices).
    if (c == '#' && line_start) {
      while (i < source.size() && source[i] != '\n') {
        if (source[i] == '\\' && i + 1 < source.size() && source[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    line_start = false;
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      // A backslash-newline splices the next line into the comment; without
      // honoring it the continuation line would leak into the token stream.
      while (i < source.size() && source[i] != '\n') {
        if (source[i] == '\\' && i + 1 < source.size() && source[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '*') {
      const std::size_t end = source.find("*/", i + 2);
      const std::size_t stop = end == std::string_view::npos ? source.size() : end + 2;
      line += static_cast<std::size_t>(
          std::count(source.begin() + static_cast<std::ptrdiff_t>(i),
                     source.begin() + static_cast<std::ptrdiff_t>(stop), '\n'));
      i = stop;
      continue;
    }
    if (c == 'R' && i + 1 < source.size() && source[i + 1] == '"') {
      i = skip_raw_string(source, i, line);
      continue;
    }
    if (c == '"' || c == '\'') {
      i = skip_quoted(source, i, line);
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < source.size() && ident_char(source[j])) ++j;
      const std::string_view ident = source.substr(i, j - i);
      // Prefixed raw string (u8R"(...)"): the whole literal is one token-free
      // span; skip_raw_string expects to sit on the 'R' before the quote.
      if (j < source.size() && source[j] == '"' && raw_string_prefix(ident)) {
        i = skip_raw_string(source, j - 1, line);
        continue;
      }
      // Prefixed ordinary string (u8"...", L"..."): drop the literal too.
      if (j < source.size() && source[j] == '"' &&
          (ident == "u8" || ident == "u" || ident == "U" || ident == "L")) {
        i = skip_quoted(source, j, line);
        continue;
      }
      tokens.push_back({ident, line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;  // crude number scan; rules never inspect numbers
      // Digit separators (1'000'000) belong to the literal: treating the '
      // as a char-literal opener would swallow source until the next quote.
      while (j < source.size() &&
             (ident_char(source[j]) || source[j] == '.' ||
              (source[j] == '\'' && j + 1 < source.size() && ident_char(source[j + 1])))) {
        ++j;
      }
      tokens.push_back({source.substr(i, j - i), line});
      i = j;
      continue;
    }
    bool matched = false;
    for (const std::string_view op : kOperators) {
      if (source.substr(i, op.size()) == op) {
        tokens.push_back({source.substr(i, op.size()), line});
        i += op.size();
        matched = true;
        break;
      }
    }
    if (matched) continue;
    tokens.push_back({source.substr(i, 1), line});
    ++i;
  }
  return tokens;
}

std::vector<std::pair<std::size_t, std::string>> suppressions(std::string_view source) {
  std::vector<std::pair<std::size_t, std::string>> out;
  constexpr std::string_view kMarker = "flash-lint: allow(";
  std::size_t line = 1;
  std::size_t pos = 0;
  while (pos < source.size()) {
    const std::size_t eol = source.find('\n', pos);
    const std::string_view text =
        source.substr(pos, eol == std::string_view::npos ? source.size() - pos : eol - pos);
    std::size_t at = text.find(kMarker);
    while (at != std::string_view::npos) {
      const std::size_t open = at + kMarker.size();
      const std::size_t close = text.find(')', open);
      if (close != std::string_view::npos) {
        out.emplace_back(line, std::string(text.substr(open, close - open)));
      }
      at = text.find(kMarker, open);
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
    ++line;
  }
  return out;
}

// -- rules ------------------------------------------------------------------

const std::vector<RuleInfo>& rule_table() {
  static const std::vector<RuleInfo> kRules = {
      {
          .id = "erase-outside-cleaner",
          .summary = "NandChip::erase_block called outside the Cleaner/GC modules "
                     "(erases must be BET-visible per Algorithm 2)",
          .hint = "route the erase through the owning translation layer's GC/fold path "
                  "(src/ftl, src/nftl, src/dftl) so the chip's erase observers — and "
                  "therefore SWL-BETUpdate — see it",
          // nand: the implementation + its declaration; ftl/nftl/dftl: the GC
          // (Cleaner) modules of the translation layers; tests: unit and
          // fault-injection tests drive the raw chip API on purpose.
          .default_allow = {"src/nand/", "src/ftl/", "src/nftl/", "src/dftl/", "tests/"},
      },
      {
          .id = "swl-state-outside-swl",
          .summary = "mutation of the leveler interval state (ecnt/fcnt/findex) outside src/swl",
          .hint = "only the SW Leveler mutates its interval state; read through "
                  "SwLeveler::ecnt()/fcnt()/findex() or extend src/swl if the algorithm "
                  "itself is changing",
          // tests: snapshot/leveler tests construct interval states by hand.
          // raw-rand and raw-file-io deliberately have NO tests/ entry:
          // determinism and the durable-write policy bind in tests too.
          .default_allow = {"src/swl/", "tests/"},
      },
      {
          .id = "raw-rand",
          .summary = "raw randomness source (rand/srand/std::random_device/std::mt19937/...) "
                     "outside core::Rng",
          .hint = "draw from a seeded core::Rng (plumb one in or derive a sub-stream); "
                  "unseeded randomness breaks sweep determinism and fuzz replayability",
          .default_allow = {"src/core/rng."},
      },
      {
          .id = "raw-file-io",
          .summary = "raw fopen/fwrite-family host I/O outside the durable snapshot store",
          .hint = "persist through FileSnapshotStore (src/swl/snapshot.*): its "
                  "write-fsync-rename slot path is what makes snapshots crash-consistent",
          .default_allow = {"src/swl/snapshot."},
      },
      // -- pass-2 cross-file rules (cross.cpp, over the symbol index) -------
      {
          .id = "thread-confinement",
          .summary = "class owns a core::ThreadChecker but a public mutating method never "
                     "asserts it, or detach_owner_thread is called outside the allowlisted "
                     "hand-off sites",
          .hint = "call thread_checker_.check(\"Class::method\") at the top of the method "
                  "(or route through a same-class method that does); move ownership "
                  "hand-offs into src/runner, src/array, or src/host",
          // tests construct and exercise objects on whatever thread gtest
          // provides; the confinement contract binds in src/.
          .default_allow = {"tests/"},
          .cross = true,
      },
      {
          .id = "observer-lifetime",
          .summary = "add_*_observer registration with no token-based remove_*_observer "
                     "reachable from the registering class's destructor",
          .hint = "store the ObserverToken returned by add_*_observer in a member and call "
                  "remove_*_observer(token) from the destructor (directly or via a method "
                  "the destructor calls) — the PR 2 dangling-observer bug class",
          .default_allow = {"tests/"},
          .cross = true,
      },
      {
          .id = "status-provenance",
          .summary = "discard_status() without a justification comment, or wrapping a callee "
                     "whose Status feeds control flow elsewhere in src/",
          .hint = "write a comment on (or directly above) the discard_status line saying why "
                  "the Status is safe to drop; if the callee's Status is branched on "
                  "elsewhere, handle it instead — or suppress with "
                  "`// justification  flash-lint: allow(status-provenance)`",
          // No allowlist: the discard discipline binds everywhere, tests
          // included (a test that drops a Status silently proves nothing).
          .default_allow = {},
          .cross = true,
      },
      {
          .id = "erase-provenance",
          .summary = "erase_block called from a non-cleaner method inside the GC-owning "
                     "modules (function-granular tightening of erase-outside-cleaner)",
          .hint = "only the per-module cleaner methods (GC victim collection, fold/rebuild, "
                  "release paths) may erase; route other paths through them so "
                  "SWL-BETUpdate sees every erase",
          .default_allow = {"tests/"},
          .cross = true,
      },
  };
  return kRules;
}

const RuleInfo& rule_by_id(std::string_view id) {
  for (const RuleInfo& r : rule_table()) {
    if (r.id == id) return r;
  }
  throw std::runtime_error("unknown flash_lint rule: " + std::string(id));
}

bool path_allowed(std::string_view rel_path, const RuleInfo& rule, const Options& options) {
  for (const std::string_view prefix : rule.default_allow) {
    if (rel_path.starts_with(prefix)) return true;
  }
  for (const std::string& entry : options.extra_allow) {
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) continue;  // validated by the CLI
    const std::string_view entry_rule{entry.data(), colon};
    const std::string_view prefix{entry.data() + colon + 1, entry.size() - colon - 1};
    if ((entry_rule == "*" || entry_rule == rule.id) && rel_path.starts_with(prefix)) return true;
  }
  return false;
}

namespace {

/// Identifiers whose *any* appearance violates raw-rand. `random` itself is
/// deliberately absent: LevelerConfig::Selection::random is a legitimate
/// enumerator, and the engine/device names below are what actually smuggle in
/// nondeterminism.
const std::unordered_set<std::string_view> kRandIdents = {
    "rand",          "srand",      "rand_r",     "drand48",    "lrand48",
    "mrand48",       "random_device", "mt19937", "mt19937_64", "minstd_rand",
    "minstd_rand0",  "default_random_engine", "ranlux24", "ranlux48", "knuth_b",
    "random_shuffle",
};

/// C-stdio write family: opening or writing a FILE* outside the durable store.
const std::unordered_set<std::string_view> kFileIoIdents = {
    "fopen",
    "freopen",
    "fdopen",
    "fwrite",
};

/// The leveler interval state, free and member spellings.
const std::unordered_set<std::string_view> kSwlState = {
    "ecnt", "fcnt", "findex", "ecnt_", "fcnt_", "findex_",
};

/// Tokens that make the *preceding* identifier a mutation.
const std::unordered_set<std::string_view> kMutatingNext = {
    "=",  "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", "++", "--",
};

struct RuleContext {
  std::string_view rel_path;
  const std::vector<Token>& tokens;
  const std::vector<std::pair<std::size_t, std::string>>& allows;
  const Options& options;
  std::vector<Finding>& findings;
};

void emit(RuleContext& ctx, const RuleInfo& rule, std::size_t line, std::string message) {
  for (const auto& [allow_line, allow_rule] : ctx.allows) {
    if (allow_line == line && (allow_rule == rule.id || allow_rule == "*")) return;
  }
  ctx.findings.push_back({std::string(rule.id), std::string(ctx.rel_path), line,
                          std::move(message), std::string(rule.hint)});
}

void check_erase_outside_cleaner(RuleContext& ctx) {
  const RuleInfo& rule = rule_by_id("erase-outside-cleaner");
  if (path_allowed(ctx.rel_path, rule, ctx.options)) return;
  const auto& t = ctx.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text == "erase_block" && t[i + 1].text == "(") {
      emit(ctx, rule, t[i].line,
           "direct erase_block call — erases outside the Cleaner/GC modules bypass "
           "SWL-BETUpdate (Algorithm 2)");
    }
  }
}

void check_swl_state(RuleContext& ctx) {
  const RuleInfo& rule = rule_by_id("swl-state-outside-swl");
  if (path_allowed(ctx.rel_path, rule, ctx.options)) return;
  const auto& t = ctx.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!kSwlState.contains(t[i].text)) continue;
    const bool written_after = i + 1 < t.size() && kMutatingNext.contains(t[i + 1].text);
    // Pre-increment applies through a member chain: `++lev.findex_` puts the
    // operator before `lev`, so walk back over `ident . ident . ...` first.
    std::size_t j = i;
    while (j >= 2 && (t[j - 1].text == "." || t[j - 1].text == "->") &&
           ident_start(t[j - 2].text.front())) {
      j -= 2;
    }
    const bool written_before = j > 0 && (t[j - 1].text == "++" || t[j - 1].text == "--");
    // `foo.ecnt = 1` on a non-leveler struct is still flagged: the state
    // names are reserved for the leveler tree-wide, by design.
    if (written_after || written_before) {
      emit(ctx, rule, t[i].line,
           "mutation of leveler interval state '" + std::string(t[i].text) +
               "' outside src/swl");
    }
  }
}

void check_raw_rand(RuleContext& ctx) {
  const RuleInfo& rule = rule_by_id("raw-rand");
  if (path_allowed(ctx.rel_path, rule, ctx.options)) return;
  const auto& t = ctx.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!kRandIdents.contains(t[i].text)) continue;
    // Member access `x.rand(...)`/`x->rand(...)` is somebody's API, not the
    // C library; `::rand` and `std::rand` are exactly what we're after.
    if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->")) continue;
    emit(ctx, rule, t[i].line,
         "raw randomness source '" + std::string(t[i].text) +
             "' — all randomness must flow through core::Rng");
  }
}

void check_raw_file_io(RuleContext& ctx) {
  const RuleInfo& rule = rule_by_id("raw-file-io");
  if (path_allowed(ctx.rel_path, rule, ctx.options)) return;
  const auto& t = ctx.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!kFileIoIdents.contains(t[i].text)) continue;
    if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->")) continue;
    if (i + 1 >= t.size() || t[i + 1].text != "(") continue;  // a mention, not a call
    emit(ctx, rule, t[i].line,
         "raw '" + std::string(t[i].text) +
             "' call — durable state must go through FileSnapshotStore");
  }
}

}  // namespace

std::vector<Finding> lint_source(std::string_view rel_path, std::string_view source,
                                 const Options& options) {
  const std::vector<Token> tokens = tokenize(source);
  const auto allows = suppressions(source);
  std::vector<Finding> findings;
  RuleContext ctx{rel_path, tokens, allows, options, findings};
  check_erase_outside_cleaner(ctx);
  check_swl_state(ctx);
  check_raw_rand(ctx);
  check_raw_file_io(ctx);
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return findings;
}

// -- file handling ----------------------------------------------------------

namespace {

[[nodiscard]] std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("flash_lint: cannot read " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

[[nodiscard]] std::string rel_display(const std::filesystem::path& file,
                                      const std::filesystem::path& root) {
  std::error_code ec;
  const std::filesystem::path rel =
      std::filesystem::relative(std::filesystem::weakly_canonical(file, ec), root, ec);
  const std::filesystem::path shown =
      (ec || rel.empty() || rel.native().starts_with("..")) ? file : rel;
  return shown.generic_string();
}

}  // namespace

std::vector<FileInput> read_inputs(const std::vector<std::filesystem::path>& files,
                                   const std::filesystem::path& root) {
  std::error_code ec;
  const std::filesystem::path canon_root = std::filesystem::weakly_canonical(root, ec);
  std::vector<FileInput> inputs;
  inputs.reserve(files.size());
  for (const auto& file : files) {
    inputs.push_back({rel_display(file, ec ? root : canon_root), read_file(file)});
  }
  return inputs;
}

Report lint_sources(const std::vector<FileInput>& files, const Options& options) {
  Report report;
  for (const FileInput& f : files) {
    auto findings = lint_source(f.rel_path, f.source, options);
    report.findings.insert(report.findings.end(), std::make_move_iterator(findings.begin()),
                           std::make_move_iterator(findings.end()));
    ++report.files_scanned;
  }
  // Pass 2: one symbol index shared by every cross-file rule.
  const SymbolIndex index = build_index(files);
  auto cross = run_cross_rules(index, options);
  report.findings.insert(report.findings.end(), std::make_move_iterator(cross.begin()),
                         std::make_move_iterator(cross.end()));
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
            });
  return report;
}

Report lint_files(const std::vector<std::filesystem::path>& files,
                  const std::filesystem::path& root, const Options& options) {
  return lint_sources(read_inputs(files, root), options);
}

std::vector<std::filesystem::path> collect_sources(
    const std::vector<std::filesystem::path>& dirs) {
  std::set<std::filesystem::path> out;  // set: dedupe overlapping dirs, sorted
  for (const auto& dir : dirs) {
    if (!std::filesystem::exists(dir)) continue;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp") out.insert(entry.path());
    }
  }
  return {out.begin(), out.end()};
}

std::vector<std::filesystem::path> files_from_compile_commands(
    const std::filesystem::path& compile_commands) {
  const std::string text = read_file(compile_commands);
  const std::optional<runner::Json> doc = runner::Json::parse(text);
  if (!doc || !doc->is_array()) {
    throw std::runtime_error("flash_lint: malformed compile_commands.json: " +
                             compile_commands.string());
  }
  std::set<std::filesystem::path> out;
  for (std::size_t i = 0; i < doc->size(); ++i) {
    const runner::Json* entry = doc->at(i);
    const runner::Json* file = entry != nullptr ? entry->find("file") : nullptr;
    const std::string* name = file != nullptr ? file->string() : nullptr;
    if (name == nullptr) continue;
    std::filesystem::path p(*name);
    if (p.is_relative()) {
      const runner::Json* dir = entry->find("directory");
      const std::string* dir_name = dir != nullptr ? dir->string() : nullptr;
      if (dir_name != nullptr) p = std::filesystem::path(*dir_name) / p;
    }
    if (std::filesystem::exists(p)) out.insert(p);
  }
  return {out.begin(), out.end()};
}

std::string report_to_json(const Report& report) {
  runner::Json doc = runner::Json::object();
  doc.set("version", 1);
  doc.set("files_scanned", static_cast<std::uint64_t>(report.files_scanned));
  runner::Json findings = runner::Json::array();
  for (const Finding& f : report.findings) {
    runner::Json item = runner::Json::object();
    item.set("rule", f.rule);
    item.set("file", f.file);
    item.set("line", static_cast<std::uint64_t>(f.line));
    item.set("message", f.message);
    item.set("hint", f.hint);
    findings.push(std::move(item));
  }
  doc.set("findings", std::move(findings));
  return doc.dump(2);
}

}  // namespace swl::lint
