// Perf-regression comparator for the bench_micro artifact.
//
// Compare mode (the CI gate):
//
//   perf_compare BASELINE.json CURRENT.json [--max-regression PCT]
//
// Both files are bench_micro --json output: {bench, points:[{name, items,
// seconds, items_per_second, ...}]}. The comparator normalizes for machine
// speed using the `calibrate` point — a pure-ALU spin whose throughput
// tracks the host, not the code under test — then fails (exit 1) when any
// benchmark present in the baseline regressed by more than the threshold
// (default 15%) after normalization:
//
//   speed     = current.calibrate.ips / baseline.calibrate.ips
//   ratio     = (current.ips / speed) / baseline.ips      (per benchmark)
//   regressed = ratio < 1 - threshold
//
// Benchmarks missing from the current run fail the gate (a silently dropped
// benchmark is not a pass); new benchmarks only in the current run are
// reported and ignored. Exit codes: 0 ok, 1 regression, 2 usage/bad input.
//
// Merge mode:
//
//   perf_compare --merge OUT.json IN1.json IN2.json [IN3.json ...]
//
// Writes an artifact holding, per benchmark, the point with the highest
// items_per_second across the inputs. Process-level effects (address-space
// layout, transparent huge pages) make individual invocations of a
// benchmark differ far more than repetitions inside one process, so both
// the committed baseline and the CI measurement are best-of-several
// *invocations*, merged with this mode, before being compared.
//
// Baseline-update mode:
//
//   perf_compare --update-baseline BASELINE.json IN1.json [IN2.json ...]
//                [--ratchet] [--max-regression PCT]
//
// One-command re-baseline: merges the inputs (best-of per benchmark, same
// rule as --merge) and writes the result over BASELINE.json. With
// --ratchet the write is refused (exit 1) when any benchmark already in the
// old baseline would regress beyond the threshold after calibrate
// normalization — the baseline may only move sideways-or-up, so an
// accidental re-baseline cannot launder a real regression. A missing or
// unreadable old baseline is not an error: the first baseline has nothing
// to ratchet against.
//
// After an intentional perf change, re-baseline by committing a fresh
// merged artifact as bench/BENCH_micro.json (see README).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "runner/json.hpp"

namespace {

using swl::runner::Json;

struct Point {
  double items_per_second = 0.0;
  Json raw;  // the full point object, for merge output
};

using PointMap = std::map<std::string, Point>;

std::optional<PointMap> load_points(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "perf_compare: cannot open " << path << "\n";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::optional<Json> doc = Json::parse(buf.str());
  if (!doc.has_value()) {
    std::cerr << "perf_compare: " << path << " is not valid JSON\n";
    return std::nullopt;
  }
  const Json* points = doc->find("points");
  if (points == nullptr || !points->is_array()) {
    std::cerr << "perf_compare: " << path << " has no points array\n";
    return std::nullopt;
  }
  PointMap out;
  for (std::size_t i = 0; i < points->size(); ++i) {
    const Json& p = *points->at(i);
    const Json* name = p.find("name");
    const Json* ips = p.find("items_per_second");
    if (name == nullptr || name->string() == nullptr || ips == nullptr ||
        !ips->number().has_value()) {
      std::cerr << "perf_compare: " << path << " point " << i
                << " lacks name/items_per_second\n";
      return std::nullopt;
    }
    out[*name->string()] = Point{*ips->number(), p};
  }
  return out;
}

std::string fmt_ips(double ips) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << ips / 1e6 << "M/s";
  return os.str();
}

std::optional<PointMap> merge_points(const std::vector<std::string>& inputs) {
  PointMap best;
  for (const std::string& path : inputs) {
    const auto points = load_points(path);
    if (!points.has_value()) return std::nullopt;
    for (const auto& [name, pt] : *points) {
      const auto it = best.find(name);
      if (it == best.end() || pt.items_per_second > it->second.items_per_second) {
        best[name] = pt;
      }
    }
  }
  return best;
}

int write_artifact(const std::string& out_path, PointMap points, std::size_t input_count) {
  Json doc = Json::object();
  doc.set("bench", "micro");
  doc.set("merged_from", static_cast<std::uint64_t>(input_count));
  Json arr = Json::array();
  for (auto& [name, pt] : points) arr.push(std::move(pt.raw));
  doc.set("points", std::move(arr));
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "perf_compare: cannot write " << out_path << "\n";
    return 2;
  }
  out << doc.dump() << "\n";
  std::cout << "merged " << input_count << " artifact(s) into " << out_path << "\n";
  return 0;
}

int merge(const std::string& out_path, const std::vector<std::string>& inputs) {
  auto best = merge_points(inputs);
  if (!best.has_value()) return 2;
  return write_artifact(out_path, std::move(*best), inputs.size());
}

/// The ratchet: every benchmark in the old baseline must survive in the
/// candidate at no worse than `1 - threshold` of its normalized throughput.
/// Returns true when the candidate may replace the baseline.
bool ratchet_allows(const PointMap& old_baseline, const PointMap& candidate, double threshold) {
  const auto base_cal = old_baseline.find("calibrate");
  const auto cand_cal = candidate.find("calibrate");
  if (base_cal == old_baseline.end() || cand_cal == candidate.end() ||
      base_cal->second.items_per_second <= 0.0 || cand_cal->second.items_per_second <= 0.0) {
    std::cerr << "perf_compare: ratchet needs a positive `calibrate` point on both sides\n";
    return false;
  }
  const double speed = cand_cal->second.items_per_second / base_cal->second.items_per_second;
  bool ok = true;
  for (const auto& [name, base] : old_baseline) {
    if (name == "calibrate") continue;
    const auto it = candidate.find(name);
    if (it == candidate.end()) {
      std::cout << "  ratchet: " << name << " MISSING from new baseline\n";
      ok = false;
      continue;
    }
    const double ratio = (it->second.items_per_second / speed) / base.items_per_second;
    if (ratio < 1.0 - threshold) {
      std::cout << "  ratchet: " << name << " would regress to ";
      std::cout.precision(3);
      std::cout << std::fixed << ratio << "x normalized (" << fmt_ips(base.items_per_second)
                << " -> " << fmt_ips(it->second.items_per_second) << ")\n";
      ok = false;
    }
  }
  return ok;
}

int update_baseline(const std::string& baseline_path, const std::vector<std::string>& inputs,
                    bool ratchet, double threshold) {
  auto best = merge_points(inputs);
  if (!best.has_value()) return 2;
  if (ratchet) {
    // Swallow load errors on purpose: the first-ever baseline (or one from a
    // pre-gate era) has nothing to ratchet against.
    std::ifstream probe(baseline_path);
    if (probe) {
      probe.close();
      const auto old_baseline = load_points(baseline_path);
      if (old_baseline.has_value() && !ratchet_allows(*old_baseline, *best, threshold)) {
        std::cerr << "perf_compare: refusing to update " << baseline_path
                  << " — existing baseline point(s) would regress beyond " << threshold * 100.0
                  << "% (rerun without --ratchet to force)\n";
        return 1;
      }
    } else {
      std::cout << "no existing baseline at " << baseline_path << "; nothing to ratchet\n";
    }
  }
  return write_artifact(baseline_path, std::move(*best), inputs.size());
}

int compare(const std::string& baseline_path, const std::string& current_path,
            double threshold) {
  const auto baseline = load_points(baseline_path);
  const auto current = load_points(current_path);
  if (!baseline.has_value() || !current.has_value()) return 2;

  const auto base_cal = baseline->find("calibrate");
  const auto cur_cal = current->find("calibrate");
  if (base_cal == baseline->end() || cur_cal == current->end() ||
      base_cal->second.items_per_second <= 0.0 || cur_cal->second.items_per_second <= 0.0) {
    std::cerr << "perf_compare: both files need a positive `calibrate` point\n";
    return 2;
  }
  const double speed = cur_cal->second.items_per_second / base_cal->second.items_per_second;
  std::cout << "machine speed vs baseline host: " << fmt_ips(cur_cal->second.items_per_second)
            << " / " << fmt_ips(base_cal->second.items_per_second) << " = ";
  std::cout.precision(3);
  std::cout << std::fixed << speed << "x\n\n";

  bool failed = false;
  std::cout << "  benchmark                 baseline      current   normalized  verdict\n";
  for (const auto& [name, base] : *baseline) {
    if (name == "calibrate") continue;
    const auto it = current->find(name);
    if (it == current->end()) {
      std::cout << "  " << name << ": MISSING from current run\n";
      failed = true;
      continue;
    }
    const double ratio = (it->second.items_per_second / speed) / base.items_per_second;
    const bool regressed = ratio < 1.0 - threshold;
    failed = failed || regressed;
    std::cout << "  ";
    std::cout.width(22);
    std::cout << std::left << name << std::right;
    std::cout.width(13);
    std::cout << fmt_ips(base.items_per_second);
    std::cout.width(13);
    std::cout << fmt_ips(it->second.items_per_second);
    std::cout.width(12);
    std::cout.precision(3);
    std::cout << std::fixed << ratio;
    std::cout << (regressed ? "  REGRESSED" : "  ok") << "\n";
  }
  for (const auto& [name, pt] : *current) {
    if (baseline->find(name) == baseline->end()) {
      std::cout << "  " << name << ": new benchmark (" << fmt_ips(pt.items_per_second)
                << "), not gated\n";
    }
  }

  std::cout << "\nperf gate: "
            << (failed ? "FAIL (normalized throughput regressed beyond " : "ok (threshold ")
            << threshold * 100.0 << "%)\n";
  return failed ? 1 : 0;
}

void usage(std::ostream& os) {
  os << "usage: perf_compare BASELINE.json CURRENT.json [--max-regression 0.15]\n"
        "       perf_compare --merge OUT.json IN1.json IN2.json [...]\n"
        "       perf_compare --update-baseline BASELINE.json IN1.json [IN2.json ...]\n"
        "                    [--ratchet] [--max-regression 0.15]\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double threshold = 0.15;
  bool merge_mode = false;
  bool update_mode = false;
  bool ratchet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-regression") {
      if (i + 1 >= argc) {
        std::cerr << "--max-regression needs a value (fraction, e.g. 0.15)\n";
        return 2;
      }
      try {
        threshold = std::stod(argv[++i]);
      } catch (const std::logic_error&) {
        std::cerr << "invalid --max-regression value\n";
        return 2;
      }
      if (threshold <= 0.0 || threshold >= 1.0) {
        std::cerr << "--max-regression must be in (0, 1)\n";
        return 2;
      }
    } else if (arg == "--merge") {
      merge_mode = true;
    } else if (arg == "--update-baseline") {
      update_mode = true;
    } else if (arg == "--ratchet") {
      ratchet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (merge_mode && update_mode) {
    std::cerr << "--merge and --update-baseline are mutually exclusive\n";
    return 2;
  }
  if (ratchet && !update_mode) {
    std::cerr << "--ratchet only applies to --update-baseline\n";
    return 2;
  }
  if (merge_mode) {
    if (paths.size() < 3) {
      usage(std::cerr);
      return 2;
    }
    return merge(paths[0], std::vector<std::string>(paths.begin() + 1, paths.end()));
  }
  if (update_mode) {
    if (paths.size() < 2) {
      usage(std::cerr);
      return 2;
    }
    return update_baseline(paths[0], std::vector<std::string>(paths.begin() + 1, paths.end()),
                           ratchet, threshold);
  }
  if (paths.size() != 2) {
    usage(std::cerr);
    return 2;
  }
  return compare(paths[0], paths[1], threshold);
}
